//! Nelder–Mead simplex baseline.

use serde::{Deserialize, Serialize};

use crate::{Bounds, IterRecord, Objective, OptResult, Optimizer, StopReason};

/// Options for [`NelderMead`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NmOptions {
    /// Edge length of the initial simplex, as a fraction of the box extent.
    pub initial_size: f64,
    /// Stop when the simplex diameter falls below this fraction of the box
    /// extent.
    pub min_size: f64,
    /// Stop after this many iterations.
    pub max_iters: usize,
    /// Stop after this many evaluations (0 = unlimited).
    pub max_evals: u64,
}

impl Default for NmOptions {
    fn default() -> Self {
        NmOptions {
            initial_size: 0.2,
            min_size: 1e-4,
            max_iters: 500,
            max_evals: 0,
        }
    }
}

/// The classic Nelder–Mead downhill simplex, adapted to maximization and
/// projected into the bounds box.
///
/// Used as a baseline in the optimizer-comparison ablation; like compass
/// search it has no noise handling, so dynamic noise degrades it quickly.
///
/// # Examples
///
/// ```
/// use ascdg_opt::{Bounds, FnObjective, NelderMead, NmOptions, Optimizer};
///
/// let mut f = FnObjective::new(2, |x: &[f64]| -(x[0] - 0.6).powi(2) - (x[1] - 0.4).powi(2));
/// let r = NelderMead::new(NmOptions::default())
///     .maximize(&mut f, &Bounds::unit(2), &[0.1, 0.1], 0);
/// assert!((r.best_x[0] - 0.6).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NelderMead {
    options: NmOptions,
}

impl NelderMead {
    /// Creates the optimizer.
    #[must_use]
    pub fn new(options: NmOptions) -> Self {
        NelderMead { options }
    }
}

const ALPHA: f64 = 1.0; // reflection
const GAMMA: f64 = 2.0; // expansion
const RHO: f64 = 0.5; // contraction
const SIGMA: f64 = 0.5; // shrink

fn diameter(simplex: &[Vec<f64>]) -> f64 {
    let mut d = 0.0f64;
    for i in 0..simplex.len() {
        for j in i + 1..simplex.len() {
            let dist = simplex[i]
                .iter()
                .zip(&simplex[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            d = d.max(dist);
        }
    }
    d
}

impl Optimizer for NelderMead {
    fn maximize(
        &self,
        objective: &mut dyn Objective,
        bounds: &Bounds,
        start: &[f64],
        _seed: u64,
    ) -> OptResult {
        let dim = objective.dim();
        assert_eq!(bounds.dim(), dim, "bounds dimension mismatch");
        assert_eq!(start.len(), dim, "start dimension mismatch");
        let opts = &self.options;

        let mut evals: u64 = 0;
        let eval = |obj: &mut dyn Objective, x: &[f64], evals: &mut u64| {
            *evals += 1;
            obj.eval(x)
        };

        // Initial simplex: start plus a displaced vertex per axis.
        let start = bounds.project(start);
        let edge = opts.initial_size * bounds.max_extent();
        let mut simplex: Vec<Vec<f64>> = vec![start.clone()];
        for axis in 0..dim {
            let mut v = start.clone();
            // Displace inward if displacing outward would leave the box.
            v[axis] = if v[axis] + edge <= bounds.hi()[axis] {
                v[axis] + edge
            } else {
                v[axis] - edge
            };
            simplex.push(bounds.project(&v));
        }
        let mut values: Vec<f64> = simplex
            .iter()
            .map(|v| eval(objective, v, &mut evals))
            .collect();

        let mut trace = Vec::new();
        let mut stop_reason = StopReason::MaxIters;
        let budget_left = |evals: u64| opts.max_evals == 0 || evals < opts.max_evals;

        for iter in 0..opts.max_iters {
            // Sort descending by value (best first: maximization).
            let mut order: Vec<usize> = (0..simplex.len()).collect();
            order.sort_by(|&a, &b| {
                values[b]
                    .partial_cmp(&values[a])
                    .expect("non-NaN objective")
            });
            simplex = order.iter().map(|&i| simplex[i].clone()).collect();
            values = order.iter().map(|&i| values[i]).collect();

            if diameter(&simplex) < opts.min_size * bounds.max_extent() {
                stop_reason = StopReason::SimplexCollapsed;
                break;
            }
            if !budget_left(evals) {
                stop_reason = StopReason::MaxEvals;
                break;
            }

            let worst = simplex.len() - 1;
            // Centroid of all but the worst vertex.
            let mut centroid = vec![0.0; dim];
            for v in &simplex[..worst] {
                for (c, x) in centroid.iter_mut().zip(v) {
                    *c += x;
                }
            }
            for c in &mut centroid {
                *c /= worst as f64;
            }

            let blend = |a: &[f64], b: &[f64], t: f64| -> Vec<f64> {
                bounds.project(
                    &a.iter()
                        .zip(b)
                        .map(|(&x, &y)| x + t * (x - y))
                        .collect::<Vec<_>>(),
                )
            };

            let reflected = blend(&centroid, &simplex[worst], ALPHA);
            let fr = eval(objective, &reflected, &mut evals);
            let mut iter_best = fr;

            if fr > values[0] {
                // Try expanding.
                let expanded = blend(&centroid, &simplex[worst], GAMMA);
                let fe = eval(objective, &expanded, &mut evals);
                iter_best = iter_best.max(fe);
                if fe > fr {
                    simplex[worst] = expanded;
                    values[worst] = fe;
                } else {
                    simplex[worst] = reflected;
                    values[worst] = fr;
                }
            } else if fr > values[worst - 1] {
                simplex[worst] = reflected;
                values[worst] = fr;
            } else {
                // Contract toward the centroid.
                let contracted = blend(&centroid, &simplex[worst], -RHO);
                let fc = eval(objective, &contracted, &mut evals);
                iter_best = iter_best.max(fc);
                if fc > values[worst] {
                    simplex[worst] = contracted;
                    values[worst] = fc;
                } else {
                    // Shrink everything toward the best vertex.
                    let best = simplex[0].clone();
                    for i in 1..simplex.len() {
                        let shrunk: Vec<f64> = simplex[i]
                            .iter()
                            .zip(&best)
                            .map(|(&x, &b)| b + SIGMA * (x - b))
                            .collect();
                        simplex[i] = bounds.project(&shrunk);
                        values[i] = eval(objective, &simplex[i], &mut evals);
                        iter_best = iter_best.max(values[i]);
                    }
                }
            }

            let running_best = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            trace.push(IterRecord {
                iter,
                step: diameter(&simplex),
                iter_best,
                running_best,
                evals,
            });
        }

        let (best_idx, &best_value) = values
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("non-NaN objective"))
            .expect("simplex is non-empty");
        OptResult {
            best_x: simplex[best_idx].clone(),
            best_value,
            evals,
            stop_reason,
            trace,
        }
    }

    fn name(&self) -> &'static str {
        "nelder-mead"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnObjective;

    #[test]
    fn converges_on_quadratic() {
        let mut f = FnObjective::new(2, |x: &[f64]| {
            -(x[0] - 0.6).powi(2) - 2.0 * (x[1] - 0.4).powi(2)
        });
        let r = NelderMead::default().maximize(&mut f, &Bounds::unit(2), &[0.05, 0.95], 0);
        assert!((r.best_x[0] - 0.6).abs() < 0.02, "{:?}", r.best_x);
        assert!((r.best_x[1] - 0.4).abs() < 0.02, "{:?}", r.best_x);
        assert_eq!(r.stop_reason, StopReason::SimplexCollapsed);
    }

    #[test]
    fn handles_optimum_on_boundary() {
        let mut f = FnObjective::new(2, |x: &[f64]| x[0] + x[1]);
        let r = NelderMead::default().maximize(&mut f, &Bounds::unit(2), &[0.2, 0.2], 0);
        assert!(r.best_x[0] > 0.95 && r.best_x[1] > 0.95, "{:?}", r.best_x);
    }

    #[test]
    fn respects_budget() {
        let mut f = FnObjective::new(3, |_: &[f64]| 0.0);
        let r = NelderMead::new(NmOptions {
            max_evals: 30,
            max_iters: 10_000,
            min_size: 0.0,
            ..NmOptions::default()
        })
        .maximize(&mut f, &Bounds::unit(3), &[0.5; 3], 0);
        assert_eq!(r.stop_reason, StopReason::MaxEvals);
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut f = FnObjective::new(2, |x: &[f64]| -(x[0] - 0.3).powi(2) - x[1]);
            NelderMead::default().maximize(&mut f, &Bounds::unit(2), &[0.9, 0.9], 0)
        };
        assert_eq!(run(), run());
    }
}
