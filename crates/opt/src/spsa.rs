//! SPSA: simultaneous perturbation stochastic approximation.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{Bounds, IterRecord, Objective, OptResult, Optimizer, StopReason};

/// Options for [`Spsa`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpsaOptions {
    /// Initial step-size numerator (`a` in Spall's notation).
    pub a: f64,
    /// Initial perturbation size as a fraction of the box extent (`c`).
    pub c: f64,
    /// Step decay exponent (Spall recommends 0.602).
    pub alpha: f64,
    /// Perturbation decay exponent (Spall recommends 0.101).
    pub gamma: f64,
    /// Step-size stability constant (`A`; often ~10% of the iteration
    /// budget).
    pub stability: f64,
    /// Stop after this many iterations.
    pub max_iters: usize,
    /// Stop after this many evaluations (0 = unlimited).
    pub max_evals: u64,
}

impl Default for SpsaOptions {
    fn default() -> Self {
        SpsaOptions {
            a: 0.1,
            c: 0.1,
            alpha: 0.602,
            gamma: 0.101,
            stability: 10.0,
            max_iters: 200,
            max_evals: 0,
        }
    }
}

/// Simultaneous perturbation stochastic approximation (Spall 1992),
/// adapted to maximization over a box.
///
/// SPSA estimates a gradient from just **two** objective samples per
/// iteration regardless of dimension — the classic low-budget method for
/// noisy objectives, and a natural baseline against implicit filtering in
/// the CDG setting (the ablation benches compare them).
///
/// # Examples
///
/// ```
/// use ascdg_opt::{Bounds, FnObjective, Optimizer, Spsa, SpsaOptions};
///
/// let mut f = FnObjective::new(3, |x: &[f64]| {
///     -x.iter().map(|v| (v - 0.6) * (v - 0.6)).sum::<f64>()
/// });
/// let r = Spsa::new(SpsaOptions { max_iters: 400, ..SpsaOptions::default() })
///     .maximize(&mut f, &Bounds::unit(3), &[0.2, 0.2, 0.2], 3);
/// assert!((r.best_x[0] - 0.6).abs() < 0.1, "{:?}", r.best_x);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Spsa {
    options: SpsaOptions,
}

impl Spsa {
    /// Creates the optimizer.
    #[must_use]
    pub fn new(options: SpsaOptions) -> Self {
        Spsa { options }
    }
}

impl Optimizer for Spsa {
    fn maximize(
        &self,
        objective: &mut dyn Objective,
        bounds: &Bounds,
        start: &[f64],
        seed: u64,
    ) -> OptResult {
        let dim = objective.dim();
        assert_eq!(bounds.dim(), dim, "bounds dimension mismatch");
        assert_eq!(start.len(), dim, "start dimension mismatch");
        let opts = &self.options;
        let mut rng = StdRng::seed_from_u64(seed);

        let mut x = bounds.project(start);
        let mut evals: u64 = 0;
        let mut best_x = x.clone();
        let mut running_best = f64::NEG_INFINITY;
        let mut trace = Vec::new();
        let mut stop_reason = StopReason::MaxIters;
        let extent = bounds.max_extent();

        for iter in 0..opts.max_iters {
            if opts.max_evals != 0 && evals + 2 > opts.max_evals {
                stop_reason = StopReason::MaxEvals;
                break;
            }
            let k = iter as f64 + 1.0;
            let ak = opts.a / (k + opts.stability).powf(opts.alpha);
            let ck = (opts.c * extent) / k.powf(opts.gamma);

            // Rademacher perturbation.
            let delta: Vec<f64> = (0..dim)
                .map(|_| if rng.random::<bool>() { 1.0 } else { -1.0 })
                .collect();
            let plus: Vec<f64> = x.iter().zip(&delta).map(|(&v, &d)| v + ck * d).collect();
            let minus: Vec<f64> = x.iter().zip(&delta).map(|(&v, &d)| v - ck * d).collect();
            let plus = bounds.project(&plus);
            let minus = bounds.project(&minus);
            let fp = objective.eval(&plus);
            let fm = objective.eval(&minus);
            evals += 2;

            let iter_best = fp.max(fm);
            if fp > running_best {
                running_best = fp;
                best_x = plus.clone();
            }
            if fm > running_best {
                running_best = fm;
                best_x = minus.clone();
            }

            // Gradient ascent step (two-sample SP gradient estimate).
            let scale = (fp - fm) / (2.0 * ck);
            let next: Vec<f64> = x
                .iter()
                .zip(&delta)
                .map(|(&v, &d)| v + ak * scale / d)
                .collect();
            x = bounds.project(&next);

            trace.push(IterRecord {
                iter,
                step: ck,
                iter_best,
                running_best,
                evals,
            });
        }

        OptResult {
            best_x,
            best_value: running_best,
            evals,
            stop_reason,
            trace,
        }
    }

    fn name(&self) -> &'static str {
        "spsa"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{testfn, FnObjective};

    #[test]
    fn climbs_a_smooth_bump() {
        let mut f = FnObjective::new(2, |x: &[f64]| -(x[0] - 0.7).powi(2) - (x[1] - 0.3).powi(2));
        let r = Spsa::new(SpsaOptions {
            max_iters: 600,
            ..SpsaOptions::default()
        })
        .maximize(&mut f, &Bounds::unit(2), &[0.1, 0.9], 5);
        assert!((r.best_x[0] - 0.7).abs() < 0.12, "{:?}", r.best_x);
        assert!((r.best_x[1] - 0.3).abs() < 0.12, "{:?}", r.best_x);
    }

    #[test]
    fn tolerates_noise() {
        let mut f = testfn::with_noise(testfn::sphere(vec![0.5; 3]), 0.01, 7);
        let r = Spsa::new(SpsaOptions {
            max_iters: 800,
            ..SpsaOptions::default()
        })
        .maximize(&mut f, &Bounds::unit(3), &[0.05; 3], 11);
        for v in &r.best_x {
            assert!((v - 0.5).abs() < 0.25, "{:?}", r.best_x);
        }
    }

    #[test]
    fn two_evals_per_iteration() {
        let mut f = FnObjective::new(1, |x: &[f64]| x[0]);
        let r = Spsa::new(SpsaOptions {
            max_iters: 25,
            ..SpsaOptions::default()
        })
        .maximize(&mut f, &Bounds::unit(1), &[0.5], 1);
        assert_eq!(r.evals, 50);
        assert_eq!(r.trace.len(), 25);
    }

    #[test]
    fn respects_eval_budget() {
        let mut f = FnObjective::new(2, |_: &[f64]| 0.0);
        let r = Spsa::new(SpsaOptions {
            max_iters: 10_000,
            max_evals: 31,
            ..SpsaOptions::default()
        })
        .maximize(&mut f, &Bounds::unit(2), &[0.5; 2], 1);
        assert_eq!(r.stop_reason, StopReason::MaxEvals);
        assert!(r.evals <= 31);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut f = FnObjective::new(2, |x: &[f64]| -x[0] * x[0] + x[1]);
            Spsa::default().maximize(&mut f, &Bounds::unit(2), &[0.5; 2], seed)
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3).trace, run(4).trace);
    }
}
