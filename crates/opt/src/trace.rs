//! Shared result/trace types and the `Optimizer` trait.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{Bounds, Objective};

/// Why an optimization run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum StopReason {
    /// The iteration limit was reached.
    MaxIters,
    /// The evaluation budget was exhausted.
    MaxEvals,
    /// The stencil/step size shrank below its minimum.
    StepConverged,
    /// The objective reached the configured target value.
    TargetReached,
    /// The simplex collapsed (Nelder–Mead only).
    SimplexCollapsed,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StopReason::MaxIters => "iteration limit",
            StopReason::MaxEvals => "evaluation budget",
            StopReason::StepConverged => "step size converged",
            StopReason::TargetReached => "target value reached",
            StopReason::SimplexCollapsed => "simplex collapsed",
        })
    }
}

/// One iteration of an optimizer's progress, as plotted in the paper's
/// Fig. 6 (maximal target value per iteration).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterRecord {
    /// 0-based iteration number.
    pub iter: usize,
    /// Step/stencil size in effect during the iteration (0 where the
    /// notion does not apply).
    pub step: f64,
    /// Best objective value *sampled during this iteration* (the noisy
    /// per-iteration maximum the paper plots; includes noise spikes).
    pub iter_best: f64,
    /// Best objective value seen so far across the run.
    pub running_best: f64,
    /// Cumulative objective evaluations at the end of the iteration.
    pub evals: u64,
}

/// Per-iteration progress records.
pub type Trace = Vec<IterRecord>;

/// The outcome of an optimization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptResult {
    /// The best point found.
    pub best_x: Vec<f64>,
    /// The objective value observed at `best_x`.
    pub best_value: f64,
    /// Total objective evaluations.
    pub evals: u64,
    /// Why the run stopped.
    pub stop_reason: StopReason,
    /// Per-iteration progress.
    pub trace: Trace,
}

impl OptResult {
    /// The per-iteration best values (the paper's Fig. 6 series).
    #[must_use]
    pub fn iteration_series(&self) -> Vec<f64> {
        self.trace.iter().map(|r| r.iter_best).collect()
    }
}

/// Convergence metrics extracted from a [`Trace`] — the "convergence rate
/// ... in terms of iterations and number of samples" the paper's
/// hyperparameter discussion is about.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceMetrics {
    /// Final running-best value.
    pub final_best: f64,
    /// Iterations until the running best first reached 90% of its final
    /// value (`None` for an empty trace).
    pub iters_to_90pct: Option<usize>,
    /// Evaluations spent until that iteration (`None` for an empty trace).
    pub evals_to_90pct: Option<u64>,
    /// Total evaluations recorded by the trace.
    pub total_evals: u64,
}

impl TraceMetrics {
    /// Computes the metrics of a trace.
    ///
    /// # Examples
    ///
    /// ```
    /// use ascdg_opt::{IterRecord, TraceMetrics};
    ///
    /// let trace = vec![
    ///     IterRecord { iter: 0, step: 0.2, iter_best: 0.1, running_best: 0.1, evals: 10 },
    ///     IterRecord { iter: 1, step: 0.2, iter_best: 1.0, running_best: 1.0, evals: 20 },
    ///     IterRecord { iter: 2, step: 0.1, iter_best: 0.9, running_best: 1.0, evals: 30 },
    /// ];
    /// let m = TraceMetrics::of(&trace);
    /// assert_eq!(m.final_best, 1.0);
    /// assert_eq!(m.iters_to_90pct, Some(1));
    /// assert_eq!(m.evals_to_90pct, Some(20));
    /// assert_eq!(m.total_evals, 30);
    /// ```
    #[must_use]
    pub fn of(trace: &Trace) -> TraceMetrics {
        let final_best = trace.last().map_or(f64::NEG_INFINITY, |r| r.running_best);
        let threshold = if final_best >= 0.0 {
            0.9 * final_best
        } else {
            // For negative objectives, "90% of final" means within 10% of
            // the final value from below.
            final_best * 1.1
        };
        let hit = trace.iter().find(|r| r.running_best >= threshold);
        TraceMetrics {
            final_best,
            iters_to_90pct: hit.map(|r| r.iter),
            evals_to_90pct: hit.map(|r| r.evals),
            total_evals: trace.last().map_or(0, |r| r.evals),
        }
    }
}

/// Exports a finished convergence [`Trace`] into a telemetry handle:
/// one `OptIter` record per iteration, plus `opt.<phase>.iterations` /
/// `opt.<phase>.evals` counters and an `opt.<phase>.final_best` gauge.
/// No-op on a disabled handle or an empty trace.
pub fn record_trace(phase: &str, trace: &Trace, telemetry: &ascdg_telemetry::Telemetry) {
    if !telemetry.is_enabled() || trace.is_empty() {
        return;
    }
    for rec in trace {
        telemetry.opt_iter(
            phase,
            rec.iter as u64,
            rec.step,
            rec.iter_best,
            rec.running_best,
            rec.evals,
        );
    }
    if let Some(m) = telemetry.metrics() {
        m.counter(&format!("opt.{phase}.iterations"))
            .add(trace.len() as u64);
        m.counter(&format!("opt.{phase}.evals"))
            .add(trace.last().map_or(0, |r| r.evals));
        let final_best = TraceMetrics::of(trace).final_best;
        if final_best.is_finite() {
            m.gauge(&format!("opt.{phase}.final_best")).set(final_best);
        }
    }
}

/// A derivative-free maximizer over a bounded box.
///
/// Implementations draw only noisy samples of the objective. `start` is the
/// initial iterate (AS-CDG passes the best template from the random-sample
/// phase); methods that do not use a start point may ignore it.
pub trait Optimizer {
    /// Runs the method and returns the best point found.
    ///
    /// # Panics
    ///
    /// Implementations panic when `start` or `bounds` disagree with the
    /// objective's dimension.
    fn maximize(
        &self,
        objective: &mut dyn Objective,
        bounds: &Bounds,
        start: &[f64],
        seed: u64,
    ) -> OptResult;

    /// A short human-readable name for reports ("implicit-filtering", ...).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_reason_display() {
        assert_eq!(StopReason::MaxIters.to_string(), "iteration limit");
        assert_eq!(StopReason::StepConverged.to_string(), "step size converged");
    }

    #[test]
    fn metrics_on_empty_trace() {
        let m = TraceMetrics::of(&vec![]);
        assert_eq!(m.iters_to_90pct, None);
        assert_eq!(m.total_evals, 0);
    }

    #[test]
    fn metrics_negative_objective() {
        let rec = |iter, best, evals| IterRecord {
            iter,
            step: 0.1,
            iter_best: best,
            running_best: best,
            evals,
        };
        let trace = vec![rec(0, -10.0, 5), rec(1, -1.05, 10), rec(2, -1.0, 15)];
        let m = TraceMetrics::of(&trace);
        assert_eq!(m.final_best, -1.0);
        // Threshold is -1.1; first reached at iteration 1.
        assert_eq!(m.iters_to_90pct, Some(1));
    }

    #[test]
    fn iteration_series_extracts_iter_best() {
        let r = OptResult {
            best_x: vec![0.0],
            best_value: 2.0,
            evals: 10,
            stop_reason: StopReason::MaxIters,
            trace: vec![
                IterRecord {
                    iter: 0,
                    step: 0.25,
                    iter_best: 1.0,
                    running_best: 1.0,
                    evals: 5,
                },
                IterRecord {
                    iter: 1,
                    step: 0.25,
                    iter_best: 2.0,
                    running_best: 2.0,
                    evals: 10,
                },
            ],
        };
        assert_eq!(r.iteration_series(), vec![1.0, 2.0]);
    }
}
