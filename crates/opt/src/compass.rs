//! Compass (coordinate pattern) search baseline.

use serde::{Deserialize, Serialize};

use crate::{Bounds, IterRecord, Objective, OptResult, Optimizer, StopReason};

/// Options for [`CompassSearch`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompassOptions {
    /// Initial step as a fraction of the box extent.
    pub initial_step: f64,
    /// Stop when the step falls below this fraction of the box extent.
    pub min_step: f64,
    /// Stop after this many iterations.
    pub max_iters: usize,
    /// Stop after this many evaluations (0 = unlimited).
    pub max_evals: u64,
}

impl Default for CompassOptions {
    fn default() -> Self {
        CompassOptions {
            initial_step: 0.25,
            min_step: 1e-3,
            max_iters: 200,
            max_evals: 0,
        }
    }
}

/// Deterministic pattern search over the `2·d` signed coordinate directions.
///
/// At each iteration the objective is polled at `x ± h·e_i` for every axis;
/// the best improving poll becomes the new center, otherwise `h` is halved.
/// Compass search is the deterministic sibling of implicit filtering and a
/// standard DFO baseline; on noisy objectives it is notoriously easy to trap,
/// which the ablation bench demonstrates.
///
/// # Examples
///
/// ```
/// use ascdg_opt::{Bounds, CompassOptions, CompassSearch, FnObjective, Optimizer};
///
/// let mut f = FnObjective::new(2, |x: &[f64]| -(x[0] - 0.1).powi(2) - (x[1] - 0.9).powi(2));
/// let r = CompassSearch::new(CompassOptions::default())
///     .maximize(&mut f, &Bounds::unit(2), &[0.5, 0.5], 0);
/// assert!((r.best_x[0] - 0.1).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CompassSearch {
    options: CompassOptions,
}

impl CompassSearch {
    /// Creates the optimizer.
    #[must_use]
    pub fn new(options: CompassOptions) -> Self {
        CompassSearch { options }
    }
}

impl Optimizer for CompassSearch {
    fn maximize(
        &self,
        objective: &mut dyn Objective,
        bounds: &Bounds,
        start: &[f64],
        _seed: u64,
    ) -> OptResult {
        let dim = objective.dim();
        assert_eq!(bounds.dim(), dim, "bounds dimension mismatch");
        assert_eq!(start.len(), dim, "start dimension mismatch");
        let opts = &self.options;

        let mut center = bounds.project(start);
        let mut evals: u64 = 0;
        let eval = |obj: &mut dyn Objective, x: &[f64], evals: &mut u64| {
            *evals += 1;
            obj.eval(x)
        };
        let mut center_value = eval(objective, &center, &mut evals);
        let mut h = opts.initial_step * bounds.max_extent();
        let mut trace = Vec::new();
        let mut stop_reason = StopReason::MaxIters;
        let budget_left = |evals: u64| opts.max_evals == 0 || evals < opts.max_evals;

        for iter in 0..opts.max_iters {
            if h < opts.min_step * bounds.max_extent() {
                stop_reason = StopReason::StepConverged;
                break;
            }
            if !budget_left(evals) {
                stop_reason = StopReason::MaxEvals;
                break;
            }
            let mut best = center_value;
            let mut next_center = center.clone();
            let mut iter_best = center_value;
            // All 2·d polls of an iteration are independent: build them in
            // the canonical axis-major order (truncated to the remaining
            // eval budget) and submit them as one batch, then scan the
            // values in the same order the serial loop would have.
            let remaining = if opts.max_evals == 0 {
                u64::MAX
            } else {
                opts.max_evals.saturating_sub(evals)
            };
            let mut polls = Vec::with_capacity(2 * dim);
            'polls: for axis in 0..dim {
                for sign in [1.0, -1.0] {
                    if polls.len() as u64 >= remaining {
                        break 'polls;
                    }
                    let mut p = center.clone();
                    p[axis] += sign * h;
                    polls.push(bounds.project(&p));
                }
            }
            let values = objective.eval_batch(&polls);
            evals += polls.len() as u64;
            for (p, v) in polls.into_iter().zip(values) {
                iter_best = iter_best.max(v);
                if v > best {
                    best = v;
                    next_center = p;
                }
            }
            if next_center == center {
                h /= 2.0;
            } else {
                center = next_center;
                center_value = best;
            }
            trace.push(IterRecord {
                iter,
                step: h,
                iter_best,
                running_best: center_value,
                evals,
            });
        }

        OptResult {
            best_x: center,
            best_value: center_value,
            evals,
            stop_reason,
            trace,
        }
    }

    fn name(&self) -> &'static str {
        "compass-search"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnObjective;

    #[test]
    fn converges_on_separable_function() {
        let mut f = FnObjective::new(3, |x: &[f64]| {
            -[0.2, 0.5, 0.8]
                .iter()
                .zip(x)
                .map(|(c, v)| (v - c) * (v - c))
                .sum::<f64>()
        });
        let r = CompassSearch::default().maximize(&mut f, &Bounds::unit(3), &[0.0, 0.0, 0.0], 0);
        for (got, want) in r.best_x.iter().zip([0.2, 0.5, 0.8]) {
            assert!((got - want).abs() < 0.01);
        }
        assert_eq!(r.stop_reason, StopReason::StepConverged);
    }

    #[test]
    fn is_deterministic() {
        let run = || {
            let mut f = FnObjective::new(2, |x: &[f64]| -x[0] * x[0] - x[1]);
            CompassSearch::default().maximize(&mut f, &Bounds::unit(2), &[0.7, 0.7], 123)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn respects_eval_budget() {
        let mut f = FnObjective::new(4, |_: &[f64]| 0.0);
        let r = CompassSearch::new(CompassOptions {
            max_evals: 20,
            max_iters: 1000,
            min_step: 0.0,
            ..CompassOptions::default()
        })
        .maximize(&mut f, &Bounds::unit(4), &[0.5; 4], 0);
        assert_eq!(r.stop_reason, StopReason::MaxEvals);
        assert!(r.evals <= 21);
    }
}
