//! Synthetic test objectives for exercising the optimizers.
//!
//! Includes deterministic classics (sphere, Rosenbrock), a noise decorator
//! reproducing the *dynamic noise* of simulation-based objectives, and a
//! `coverage_like` landscape shaped like the CDG problem: nearly flat far
//! from the optimum with a logistic ridge near it.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::implicit_filtering::standard_normal;
use crate::{FnObjective, Objective};

/// Negated sphere centered at `c`: maximum 0 at `x = c`.
///
/// # Examples
///
/// ```
/// use ascdg_opt::{testfn, Objective};
/// let mut f = testfn::sphere(vec![0.5, 0.5]);
/// assert_eq!(f.eval(&[0.5, 0.5]), 0.0);
/// assert!(f.eval(&[0.0, 0.0]) < 0.0);
/// ```
pub fn sphere(center: Vec<f64>) -> impl Objective {
    let dim = center.len();
    FnObjective::new(dim, move |x: &[f64]| {
        -x.iter()
            .zip(&center)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
    })
}

/// Negated Rosenbrock banana: maximum 0 at `(1, 1, ..., 1)`.
///
/// A hard curved-valley landscape; used to stress step-halving behaviour.
pub fn rosenbrock(dim: usize) -> impl Objective {
    assert!(dim >= 2, "rosenbrock needs at least 2 dimensions");
    FnObjective::new(dim, move |x: &[f64]| {
        -x.windows(2)
            .map(|w| 100.0 * (w[1] - w[0] * w[0]).powi(2) + (1.0 - w[0]).powi(2))
            .sum::<f64>()
    })
}

/// A CDG-shaped landscape: almost flat far from `center`, with a logistic
/// ridge of height 1 near it.
///
/// The paper motivates the random-sample phase by the "almost flat area"
/// around random starts — this function reproduces that pathology. The
/// `sharpness` parameter controls how wide the informative region is.
pub fn coverage_like(center: Vec<f64>, sharpness: f64) -> impl Objective {
    let dim = center.len();
    FnObjective::new(dim, move |x: &[f64]| {
        let d2 = x
            .iter()
            .zip(&center)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>();
        1.0 / (1.0 + (sharpness * (d2.sqrt() - 0.15)).exp())
    })
}

/// Decorator adding zero-mean Gaussian noise of standard deviation `sigma`
/// to every evaluation — the *dynamic noise* of simulation estimates.
///
/// # Examples
///
/// ```
/// use ascdg_opt::{testfn, Objective};
/// let mut noisy = testfn::with_noise(testfn::sphere(vec![0.5]), 0.1, 7);
/// let a = noisy.eval(&[0.5]);
/// let b = noisy.eval(&[0.5]);
/// assert_ne!(a, b); // dynamic noise: same point, different samples
/// ```
pub fn with_noise<O: Objective>(inner: O, sigma: f64, seed: u64) -> Noisy<O> {
    Noisy {
        inner,
        sigma,
        rng: StdRng::seed_from_u64(seed),
    }
}

/// See [`with_noise`].
pub struct Noisy<O> {
    inner: O,
    sigma: f64,
    rng: StdRng,
}

impl<O: Objective> Objective for Noisy<O> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn eval(&mut self, x: &[f64]) -> f64 {
        self.inner.eval(x) + self.sigma * standard_normal(&mut self.rng)
    }
}

/// Decorator that averages `n` samples of a noisy objective per call —
/// the paper's `N` (samples per point) hyperparameter as an objective
/// transformer.
pub fn averaged<O: Objective>(inner: O, n: usize) -> Averaged<O> {
    assert!(n > 0, "need at least one sample per point");
    Averaged { inner, n }
}

/// See [`averaged`].
pub struct Averaged<O> {
    inner: O,
    n: usize,
}

impl<O: Objective> Objective for Averaged<O> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn eval(&mut self, x: &[f64]) -> f64 {
        (0..self.n).map(|_| self.inner.eval(x)).sum::<f64>() / self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bounds, IfOptions, ImplicitFiltering, Optimizer};

    #[test]
    fn sphere_peak() {
        let mut f = sphere(vec![0.3, 0.7]);
        assert_eq!(f.eval(&[0.3, 0.7]), 0.0);
        assert!(f.eval(&[0.35, 0.7]) < 0.0);
    }

    #[test]
    fn rosenbrock_peak_at_ones() {
        let mut f = rosenbrock(3);
        assert_eq!(f.eval(&[1.0, 1.0, 1.0]), 0.0);
        assert!(f.eval(&[0.0, 0.0, 0.0]) < -1.0);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rosenbrock_dim_guard() {
        let _ = rosenbrock(1);
    }

    #[test]
    fn coverage_like_is_flat_far_away() {
        let mut f = coverage_like(vec![0.9, 0.9], 40.0);
        let far1 = f.eval(&[0.1, 0.1]);
        let far2 = f.eval(&[0.2, 0.1]);
        assert!((far1 - far2).abs() < 1e-6, "far field should be flat");
        let near = f.eval(&[0.9, 0.9]);
        assert!(near > 0.9, "near field should approach 1, got {near}");
    }

    #[test]
    fn averaging_reduces_variance() {
        let mut raw = with_noise(sphere(vec![0.5]), 1.0, 3);
        let mut avg = averaged(with_noise(sphere(vec![0.5]), 1.0, 3), 64);
        let spread = |f: &mut dyn Objective| {
            let samples: Vec<f64> = (0..50).map(|_| f.eval(&[0.5])).collect();
            let mean = samples.iter().sum::<f64>() / 50.0;
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / 50.0
        };
        let v_raw = spread(&mut raw);
        let v_avg = spread(&mut avg);
        assert!(
            v_avg < v_raw / 10.0,
            "expected >=10x variance reduction: raw {v_raw}, avg {v_avg}"
        );
    }

    #[test]
    fn implicit_filtering_beats_flat_start_with_good_seed_point() {
        // From a far random start the coverage-like landscape is flat;
        // from a near start implicit filtering climbs to the top.
        let bounds = Bounds::unit(2);
        let opt = ImplicitFiltering::new(IfOptions {
            max_iters: 80,
            ..IfOptions::default()
        });
        let mut f = coverage_like(vec![0.85, 0.15], 40.0);
        let near = opt.maximize(&mut f, &bounds, &[0.7, 0.3], 5);
        assert!(near.best_value > 0.9, "near start got {}", near.best_value);
    }
}
