//! The objective abstraction: noisy, sample-only access.

/// A (possibly noisy) objective function to **maximize**.
///
/// Evaluation takes `&mut self` because sampling usually advances internal
/// state — an RNG for synthetic noise, or the batch simulation environment
/// in the real CDG objective. Two calls at the same point may return
/// different values; that is the *dynamic noise* the paper's optimizer must
/// absorb.
pub trait Objective {
    /// Dimension of the search space.
    fn dim(&self) -> usize;

    /// Draws one sample of the objective at `x`.
    fn eval(&mut self, x: &[f64]) -> f64;

    /// Draws one sample at each point of a batch, returning the values in
    /// point order.
    ///
    /// The default is a serial loop over [`Objective::eval`] — semantically
    /// the contract every implementation must keep: the result is *as if*
    /// the points were evaluated one at a time, in order. Expensive
    /// objectives (the CDG simulation objective) override this to fan the
    /// whole batch across a worker pool; stencil-based optimizers submit
    /// each iteration's stencil through this method so independent points
    /// run concurrently.
    fn eval_batch(&mut self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.eval(x)).collect()
    }
}

impl<T: Objective + ?Sized> Objective for &mut T {
    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn eval(&mut self, x: &[f64]) -> f64 {
        (**self).eval(x)
    }

    fn eval_batch(&mut self, xs: &[Vec<f64>]) -> Vec<f64> {
        (**self).eval_batch(xs)
    }
}

impl<T: Objective + ?Sized> Objective for Box<T> {
    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn eval(&mut self, x: &[f64]) -> f64 {
        (**self).eval(x)
    }

    fn eval_batch(&mut self, xs: &[Vec<f64>]) -> Vec<f64> {
        (**self).eval_batch(xs)
    }
}

/// Wraps a closure as an [`Objective`].
///
/// # Examples
///
/// ```
/// use ascdg_opt::{FnObjective, Objective};
///
/// let mut f = FnObjective::new(1, |x: &[f64]| -x[0] * x[0]);
/// assert_eq!(f.dim(), 1);
/// assert_eq!(f.eval(&[2.0]), -4.0);
/// ```
pub struct FnObjective<F> {
    dim: usize,
    f: F,
}

impl<F: FnMut(&[f64]) -> f64> FnObjective<F> {
    /// Wraps `f` as an objective over `dim` dimensions.
    pub fn new(dim: usize, f: F) -> Self {
        FnObjective { dim, f }
    }
}

impl<F: FnMut(&[f64]) -> f64> Objective for FnObjective<F> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn eval(&mut self, x: &[f64]) -> f64 {
        (self.f)(x)
    }
}

/// Decorator that counts evaluations of an inner objective.
///
/// The paper reports simulation budgets; this makes evaluation counts
/// observable in tests and benches.
///
/// # Examples
///
/// ```
/// use ascdg_opt::{CountingObjective, FnObjective, Objective};
///
/// let inner = FnObjective::new(1, |x: &[f64]| x[0]);
/// let mut counted = CountingObjective::new(inner);
/// counted.eval(&[1.0]);
/// counted.eval(&[2.0]);
/// assert_eq!(counted.count(), 2);
/// ```
pub struct CountingObjective<O> {
    inner: O,
    count: u64,
}

impl<O: Objective> CountingObjective<O> {
    /// Wraps `inner`, starting the counter at zero.
    pub fn new(inner: O) -> Self {
        CountingObjective { inner, count: 0 }
    }

    /// Number of evaluations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Consumes the decorator, returning the inner objective.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: Objective> Objective for CountingObjective<O> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn eval(&mut self, x: &[f64]) -> f64 {
        self.count += 1;
        self.inner.eval(x)
    }

    fn eval_batch(&mut self, xs: &[Vec<f64>]) -> Vec<f64> {
        self.count += xs.len() as u64;
        self.inner.eval_batch(xs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_capture_state() {
        let mut calls = 0u32;
        {
            let mut f = FnObjective::new(2, |x: &[f64]| {
                calls += 1;
                x[0] + x[1]
            });
            assert_eq!(f.eval(&[1.0, 2.0]), 3.0);
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn counting_decorator() {
        let mut c = CountingObjective::new(FnObjective::new(1, |_: &[f64]| 0.0));
        assert_eq!(c.count(), 0);
        for _ in 0..5 {
            c.eval(&[0.0]);
        }
        assert_eq!(c.count(), 5);
        let _inner = c.into_inner();
    }

    #[test]
    fn mutable_reference_is_objective() {
        let mut f = FnObjective::new(1, |x: &[f64]| x[0]);
        let r = &mut f;
        fn takes_obj(mut o: impl Objective) -> f64 {
            o.eval(&[3.0])
        }
        assert_eq!(takes_obj(r), 3.0);
    }

    #[test]
    fn default_eval_batch_matches_serial_evals() {
        let mut calls = Vec::new();
        let values = {
            let mut f = FnObjective::new(1, |x: &[f64]| {
                calls.push(x[0]);
                x[0] * 2.0
            });
            f.eval_batch(&[vec![1.0], vec![2.0], vec![3.0]])
        };
        assert_eq!(values, vec![2.0, 4.0, 6.0]);
        assert_eq!(calls, vec![1.0, 2.0, 3.0], "in point order");
    }

    #[test]
    fn counting_decorator_counts_batches() {
        let mut c = CountingObjective::new(FnObjective::new(1, |x: &[f64]| x[0]));
        let v = c.eval_batch(&[vec![1.0], vec![2.0]]);
        assert_eq!(v, vec![1.0, 2.0]);
        assert_eq!(c.count(), 2);
    }

    #[test]
    fn boxed_dyn_objective() {
        let mut b: Box<dyn Objective> = Box::new(FnObjective::new(1, |x: &[f64]| 2.0 * x[0]));
        assert_eq!(b.dim(), 1);
        assert_eq!(b.eval(&[4.0]), 8.0);
    }
}
