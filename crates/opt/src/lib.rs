//! Derivative-free optimization (DFO) for noisy objectives.
//!
//! The heart of AS-CDG is an optimization loop over the settings of a
//! skeletonized test-template. The objective — the approximated-target value
//! estimated from `N` simulations — is only available through noisy samples,
//! so gradient methods are out; the paper uses the **implicit filtering**
//! algorithm (its Algorithm 1), which this crate implements together with
//! three baselines used in the ablation benches:
//!
//! * [`ImplicitFiltering`] — stencil search with step halving, robust to
//!   dynamic noise (supports center resampling as the paper recommends).
//! * [`RandomSearch`] — uniform sampling of the box.
//! * [`CompassSearch`] — deterministic coordinate pattern search.
//! * [`NelderMead`] — the classic simplex method, projected to the box.
//! * [`Spsa`] — simultaneous perturbation stochastic approximation, the
//!   classic two-samples-per-iteration method for noisy objectives.
//! * [`ImplicitFilteringBfgs`] — Kelley's full implicit filtering (stencil
//!   gradient + quasi-Newton model + line search), the algorithm of the
//!   paper's citation \[6\], for comparison with the simplified Algorithm 1.
//!
//! All methods **maximize** over a [`Bounds`] box (AS-CDG settings live in
//! `[0,1]^d`) and record a per-iteration [`Trace`] used to regenerate the
//! paper's Fig. 6.
//!
//! # Examples
//!
//! ```
//! use ascdg_opt::{Bounds, FnObjective, ImplicitFiltering, IfOptions, Optimizer};
//!
//! // Maximize a smooth bump centered at (0.7, 0.3).
//! let mut obj = FnObjective::new(2, |x: &[f64]| {
//!     -((x[0] - 0.7).powi(2) + (x[1] - 0.3).powi(2))
//! });
//! let opt = ImplicitFiltering::new(IfOptions::default());
//! let result = opt.maximize(&mut obj, &Bounds::unit(2), &[0.5, 0.5], 7);
//! assert!((result.best_x[0] - 0.7).abs() < 0.05);
//! assert!((result.best_x[1] - 0.3).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounds;
mod compass;
mod if_bfgs;
mod implicit_filtering;
mod nelder_mead;
mod objective;
mod random_search;
mod spsa;
pub mod testfn;
mod trace;
pub mod tune;

pub use bounds::Bounds;
pub use compass::{CompassOptions, CompassSearch};
pub use if_bfgs::{IfBfgsOptions, ImplicitFilteringBfgs};
pub use implicit_filtering::{DirectionMode, IfOptions, ImplicitFiltering};
pub use nelder_mead::{NelderMead, NmOptions};
pub use objective::{CountingObjective, FnObjective, Objective};
pub use random_search::{RandomSearch, RsOptions};
pub use spsa::{Spsa, SpsaOptions};
pub use trace::{record_trace, IterRecord, OptResult, Optimizer, StopReason, Trace, TraceMetrics};
