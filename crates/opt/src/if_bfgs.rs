//! Implicit filtering with a quasi-Newton model (Kelley's full algorithm).
//!
//! The paper's Algorithm 1 is the *coordinate-search* skeleton of implicit
//! filtering. Kelley's book (the paper's citation \[6\]) builds more on the
//! same stencil: the function values at `x ± h e_i` also yield a central
//! *stencil gradient*, which drives a projected quasi-Newton (BFGS) step
//! with an Armijo line search; the stencil size `h` halves when the stencil
//! fails to produce descent (here: ascent). This module implements that
//! variant for comparison against the simplified Algorithm 1.

use serde::{Deserialize, Serialize};

use crate::{Bounds, IterRecord, Objective, OptResult, Optimizer, StopReason};

/// Options for [`ImplicitFilteringBfgs`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IfBfgsOptions {
    /// Initial stencil size as a fraction of the box extent.
    pub initial_step: f64,
    /// Stop when the stencil size falls below this fraction.
    pub min_step: f64,
    /// Stop after this many stencil iterations.
    pub max_iters: usize,
    /// Stop after this many evaluations (0 = unlimited).
    pub max_evals: u64,
    /// Armijo sufficient-increase parameter.
    pub armijo: f64,
    /// Maximum step-halvings in one line search.
    pub max_backtracks: usize,
}

impl Default for IfBfgsOptions {
    fn default() -> Self {
        IfBfgsOptions {
            initial_step: 0.25,
            min_step: 1e-3,
            max_iters: 100,
            max_evals: 0,
            armijo: 1e-4,
            max_backtracks: 5,
        }
    }
}

/// Kelley-style implicit filtering: central stencil gradient + BFGS model
/// + projected Armijo line search, with stencil halving on failure.
///
/// Deterministic (the stencil is the fixed coordinate stencil), so unlike
/// the randomized Algorithm 1 it ignores its seed. Uses `2·d` evaluations
/// per stencil plus the line-search evaluations.
///
/// # Examples
///
/// ```
/// use ascdg_opt::{Bounds, FnObjective, IfBfgsOptions, ImplicitFilteringBfgs, Optimizer};
///
/// let mut f = FnObjective::new(2, |x: &[f64]| {
///     -(x[0] - 0.3).powi(2) - 4.0 * (x[1] - 0.8).powi(2)
/// });
/// let r = ImplicitFilteringBfgs::new(IfBfgsOptions::default())
///     .maximize(&mut f, &Bounds::unit(2), &[0.9, 0.1], 0);
/// assert!((r.best_x[0] - 0.3).abs() < 0.02, "{:?}", r.best_x);
/// assert!((r.best_x[1] - 0.8).abs() < 0.02, "{:?}", r.best_x);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ImplicitFilteringBfgs {
    options: IfBfgsOptions,
}

impl ImplicitFilteringBfgs {
    /// Creates the optimizer.
    #[must_use]
    pub fn new(options: IfBfgsOptions) -> Self {
        ImplicitFilteringBfgs { options }
    }
}

/// Dense symmetric matrix-vector product.
fn matvec(m: &[Vec<f64>], v: &[f64]) -> Vec<f64> {
    m.iter()
        .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
        .collect()
}

impl Optimizer for ImplicitFilteringBfgs {
    fn maximize(
        &self,
        objective: &mut dyn Objective,
        bounds: &Bounds,
        start: &[f64],
        _seed: u64,
    ) -> OptResult {
        let dim = objective.dim();
        assert_eq!(bounds.dim(), dim, "bounds dimension mismatch");
        assert_eq!(start.len(), dim, "start dimension mismatch");
        let opts = &self.options;

        let mut evals: u64 = 0;
        let budget_left =
            |evals: u64, need: u64| opts.max_evals == 0 || evals + need <= opts.max_evals;
        let eval = |obj: &mut dyn Objective, x: &[f64], evals: &mut u64| {
            *evals += 1;
            obj.eval(x)
        };

        let mut x = bounds.project(start);
        let mut fx = eval(objective, &x, &mut evals);
        let mut h = opts.initial_step * bounds.max_extent();
        // Inverse-Hessian model, started at identity.
        let mut h_inv: Vec<Vec<f64>> = (0..dim)
            .map(|i| (0..dim).map(|j| f64::from(u8::from(i == j))).collect())
            .collect();
        let mut prev_grad: Option<Vec<f64>> = None;
        let mut prev_x = x.clone();

        let mut best_x = x.clone();
        let mut running_best = fx;
        let mut trace = Vec::new();
        let mut stop_reason = StopReason::MaxIters;

        for iter in 0..opts.max_iters {
            if h < opts.min_step * bounds.max_extent() {
                stop_reason = StopReason::StepConverged;
                break;
            }
            if !budget_left(evals, 2 * dim as u64) {
                stop_reason = StopReason::MaxEvals;
                break;
            }

            // Central stencil gradient; also track the best stencil point
            // (the coordinate-search fallback of implicit filtering).
            let mut grad = vec![0.0; dim];
            let mut stencil_best = fx;
            let mut stencil_best_x = x.clone();
            let mut iter_best = fx;
            for i in 0..dim {
                let mut plus = x.clone();
                plus[i] = (plus[i] + h).min(bounds.hi()[i]);
                let mut minus = x.clone();
                minus[i] = (minus[i] - h).max(bounds.lo()[i]);
                let fp = eval(objective, &plus, &mut evals);
                let fm = eval(objective, &minus, &mut evals);
                let width = plus[i] - minus[i];
                grad[i] = if width > 1e-15 {
                    (fp - fm) / width
                } else {
                    0.0
                };
                iter_best = iter_best.max(fp).max(fm);
                if fp > stencil_best {
                    stencil_best = fp;
                    stencil_best_x = plus;
                }
                if fm > stencil_best {
                    stencil_best = fm;
                    stencil_best_x = minus;
                }
            }

            // BFGS update from the previous iterate.
            if let Some(pg) = &prev_grad {
                let s: Vec<f64> = x.iter().zip(&prev_x).map(|(a, b)| a - b).collect();
                let y: Vec<f64> = grad.iter().zip(pg).map(|(a, b)| a - b).collect();
                let sy: f64 = s.iter().zip(&y).map(|(a, b)| a * b).sum();
                // For maximization, curvature s'y < 0 is the "good" case;
                // skip the update otherwise (standard safeguard).
                if sy < -1e-12 {
                    let rho = 1.0 / sy;
                    // H <- (I - rho s y') H (I - rho y s') + rho s s'
                    let hy = matvec(&h_inv, &y);
                    let yhy: f64 = y.iter().zip(&hy).map(|(a, b)| a * b).sum();
                    for i in 0..dim {
                        for j in 0..dim {
                            h_inv[i][j] += -rho * (s[i] * hy[j] + hy[i] * s[j])
                                + rho * rho * yhy * s[i] * s[j]
                                + rho * s[i] * s[j];
                        }
                    }
                }
            }
            prev_grad = Some(grad.clone());
            prev_x = x.clone();

            // Quasi-Newton ascent direction, projected line search.
            let dir = matvec(&h_inv, &grad);
            let gnorm: f64 = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
            let mut accepted = false;
            if gnorm > 1e-12 {
                let mut t = 1.0;
                for _ in 0..opts.max_backtracks {
                    if !budget_left(evals, 1) {
                        break;
                    }
                    let cand: Vec<f64> = x.iter().zip(&dir).map(|(xi, di)| xi + t * di).collect();
                    let cand = bounds.project(&cand);
                    let fc = eval(objective, &cand, &mut evals);
                    iter_best = iter_best.max(fc);
                    let gain: f64 = grad
                        .iter()
                        .zip(cand.iter().zip(&x))
                        .map(|(g, (c, xi))| g * (c - xi))
                        .sum();
                    if fc > fx + opts.armijo * gain.max(0.0) && fc > fx {
                        x = cand;
                        fx = fc;
                        accepted = true;
                        break;
                    }
                    t *= 0.5;
                }
            }
            if !accepted {
                // Fall back to the best stencil point; halve h when even
                // the stencil shows no ascent.
                if stencil_best > fx {
                    x = stencil_best_x;
                    fx = stencil_best;
                } else {
                    h /= 2.0;
                    // A failed stencil invalidates the local model.
                    prev_grad = None;
                    for (i, row) in h_inv.iter_mut().enumerate() {
                        for (j, v) in row.iter_mut().enumerate() {
                            *v = f64::from(u8::from(i == j));
                        }
                    }
                }
            }

            if fx > running_best {
                running_best = fx;
                best_x = x.clone();
            }
            trace.push(IterRecord {
                iter,
                step: h,
                iter_best,
                running_best,
                evals,
            });
        }

        OptResult {
            best_x,
            best_value: running_best,
            evals,
            stop_reason,
            trace,
        }
    }

    fn name(&self) -> &'static str {
        "implicit-filtering-bfgs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{testfn, FnObjective};

    #[test]
    fn converges_on_anisotropic_quadratic() {
        // The BFGS model should handle the 100:1 conditioning that plain
        // coordinate search struggles with.
        let mut f = FnObjective::new(2, |x: &[f64]| {
            -100.0 * (x[0] - 0.4).powi(2) - (x[1] - 0.6).powi(2)
        });
        let r = ImplicitFilteringBfgs::default().maximize(&mut f, &Bounds::unit(2), &[0.9, 0.1], 0);
        assert!((r.best_x[0] - 0.4).abs() < 0.02, "{:?}", r.best_x);
        assert!((r.best_x[1] - 0.6).abs() < 0.05, "{:?}", r.best_x);
    }

    #[test]
    fn handles_boundary_optimum() {
        let mut f = FnObjective::new(3, |x: &[f64]| x.iter().sum::<f64>());
        let r = ImplicitFilteringBfgs::default().maximize(&mut f, &Bounds::unit(3), &[0.2; 3], 0);
        assert!(r.best_x.iter().all(|&v| v > 0.9), "{:?}", r.best_x);
    }

    #[test]
    fn is_deterministic_regardless_of_seed() {
        let run = |seed| {
            let mut f = FnObjective::new(2, |x: &[f64]| -(x[0] - 0.5).powi(2) - x[1]);
            ImplicitFilteringBfgs::default().maximize(&mut f, &Bounds::unit(2), &[0.1, 0.9], seed)
        };
        assert_eq!(run(1), run(2));
    }

    #[test]
    fn respects_eval_budget() {
        let mut f = FnObjective::new(4, |_: &[f64]| 0.0);
        let r = ImplicitFilteringBfgs::new(IfBfgsOptions {
            max_evals: 30,
            max_iters: 10_000,
            min_step: 0.0,
            ..IfBfgsOptions::default()
        })
        .maximize(&mut f, &Bounds::unit(4), &[0.5; 4], 0);
        assert_eq!(r.stop_reason, StopReason::MaxEvals);
        assert!(r.evals <= 30);
    }

    #[test]
    fn survives_mild_noise() {
        let mut f = testfn::with_noise(testfn::sphere(vec![0.6; 2]), 0.003, 9);
        let r = ImplicitFilteringBfgs::new(IfBfgsOptions {
            max_iters: 60,
            ..IfBfgsOptions::default()
        })
        .maximize(&mut f, &Bounds::unit(2), &[0.1, 0.1], 0);
        for v in &r.best_x {
            assert!((v - 0.6).abs() < 0.2, "{:?}", r.best_x);
        }
    }

    #[test]
    fn constant_objective_converges_by_step() {
        let mut f = FnObjective::new(2, |_: &[f64]| 1.0);
        let r = ImplicitFilteringBfgs::new(IfBfgsOptions {
            min_step: 0.05,
            max_iters: 1000,
            ..IfBfgsOptions::default()
        })
        .maximize(&mut f, &Bounds::unit(2), &[0.5; 2], 0);
        assert_eq!(r.stop_reason, StopReason::StepConverged);
    }
}
