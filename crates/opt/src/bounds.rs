//! Box constraints for the search space.

use serde::{Deserialize, Serialize};

/// An axis-aligned box `[lo_i, hi_i]^d` that every iterate is projected into.
///
/// AS-CDG settings vectors live in the unit box ([`Bounds::unit`]); the type
/// supports general boxes for the synthetic test functions.
///
/// # Examples
///
/// ```
/// use ascdg_opt::Bounds;
///
/// let b = Bounds::unit(2);
/// assert_eq!(b.project(&[1.5, -0.25]), vec![1.0, 0.0]);
/// assert!(b.contains(&[0.5, 0.5]));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bounds {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Bounds {
    /// The unit box `[0,1]^dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    #[must_use]
    pub fn unit(dim: usize) -> Self {
        Bounds::uniform(dim, 0.0, 1.0)
    }

    /// A box with the same `[lo, hi]` on every axis.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero or `lo > hi`.
    #[must_use]
    pub fn uniform(dim: usize, lo: f64, hi: f64) -> Self {
        assert!(dim > 0, "bounds need at least one dimension");
        assert!(lo <= hi, "lower bound above upper bound");
        Bounds {
            lo: vec![lo; dim],
            hi: vec![hi; dim],
        }
    }

    /// A box with per-axis bounds.
    ///
    /// # Panics
    ///
    /// Panics on empty or mismatched vectors, or any `lo_i > hi_i`.
    #[must_use]
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert!(!lo.is_empty(), "bounds need at least one dimension");
        assert_eq!(lo.len(), hi.len(), "bound vectors differ in length");
        for (l, h) in lo.iter().zip(&hi) {
            assert!(l <= h, "lower bound {l} above upper bound {h}");
        }
        Bounds { lo, hi }
    }

    /// Dimension of the box.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Per-axis lower bounds.
    #[must_use]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Per-axis upper bounds.
    #[must_use]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Clamps a point into the box.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    #[must_use]
    pub fn project(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim(), "point dimension mismatch");
        x.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .map(|(&v, (&l, &h))| v.clamp(l, h))
            .collect()
    }

    /// Whether `x` lies inside the box (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    #[must_use]
    pub fn contains(&self, x: &[f64]) -> bool {
        assert_eq!(x.len(), self.dim(), "point dimension mismatch");
        x.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .all(|(&v, (&l, &h))| v >= l && v <= h)
    }

    /// The center of the box.
    #[must_use]
    pub fn center(&self) -> Vec<f64> {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(&l, &h)| 0.5 * (l + h))
            .collect()
    }

    /// The largest per-axis extent (`max_i (hi_i - lo_i)`).
    #[must_use]
    pub fn max_extent(&self) -> f64 {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(&l, &h)| h - l)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_box() {
        let b = Bounds::unit(3);
        assert_eq!(b.dim(), 3);
        assert_eq!(b.center(), vec![0.5; 3]);
        assert_eq!(b.max_extent(), 1.0);
    }

    #[test]
    fn projection_clamps() {
        let b = Bounds::new(vec![-1.0, 0.0], vec![1.0, 2.0]);
        assert_eq!(b.project(&[-5.0, 5.0]), vec![-1.0, 2.0]);
        assert_eq!(b.project(&[0.5, 0.5]), vec![0.5, 0.5]);
    }

    #[test]
    fn containment() {
        let b = Bounds::unit(2);
        assert!(b.contains(&[0.0, 1.0]));
        assert!(!b.contains(&[0.0, 1.01]));
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn zero_dim_panics() {
        let _ = Bounds::unit(0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn dim_mismatch_panics() {
        let b = Bounds::unit(2);
        let _ = b.project(&[0.0]);
    }

    #[test]
    #[should_panic(expected = "lower bound")]
    fn inverted_bounds_panic() {
        let _ = Bounds::new(vec![1.0], vec![0.0]);
    }
}
