//! Uniform random search — the simplest DFO baseline.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{Bounds, IterRecord, Objective, OptResult, Optimizer, StopReason};

/// Options for [`RandomSearch`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RsOptions {
    /// Number of points to sample.
    pub samples: u64,
    /// Stop early once an observed value reaches this target, if set.
    pub target_value: Option<f64>,
}

impl Default for RsOptions {
    fn default() -> Self {
        RsOptions {
            samples: 200,
            target_value: None,
        }
    }
}

/// Uniform random sampling of the box, keeping the best point seen.
///
/// This is both the baseline optimizer for the ablation benches and the
/// engine behind AS-CDG's *random sample* phase (which uses it to pick the
/// starting point for implicit filtering).
///
/// # Examples
///
/// ```
/// use ascdg_opt::{Bounds, FnObjective, Optimizer, RandomSearch, RsOptions};
///
/// let mut f = FnObjective::new(2, |x: &[f64]| -(x[0] - 0.5).abs() - (x[1] - 0.5).abs());
/// let r = RandomSearch::new(RsOptions { samples: 500, ..RsOptions::default() })
///     .maximize(&mut f, &Bounds::unit(2), &[0.0, 0.0], 5);
/// assert!(r.best_value > -0.2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RandomSearch {
    options: RsOptions,
}

impl RandomSearch {
    /// Creates the optimizer.
    #[must_use]
    pub fn new(options: RsOptions) -> Self {
        RandomSearch { options }
    }
}

impl Optimizer for RandomSearch {
    fn maximize(
        &self,
        objective: &mut dyn Objective,
        bounds: &Bounds,
        start: &[f64],
        seed: u64,
    ) -> OptResult {
        let dim = objective.dim();
        assert_eq!(bounds.dim(), dim, "bounds dimension mismatch");
        assert_eq!(start.len(), dim, "start dimension mismatch");
        let mut rng = StdRng::seed_from_u64(seed);

        // The start point counts as the first sample so the baseline never
        // does worse than the hand-off it was given.
        let mut best_x = bounds.project(start);
        let mut best = objective.eval(&best_x);
        let mut evals: u64 = 1;
        let mut trace = vec![IterRecord {
            iter: 0,
            step: 0.0,
            iter_best: best,
            running_best: best,
            evals,
        }];
        let mut stop_reason = StopReason::MaxEvals;

        // Samples are independent, so they are drawn up front and submitted
        // in batches. Without a target the whole budget is one batch; with a
        // target the batches stay small so the early stop fires within one
        // chunk of where a point-at-a-time run would have stopped.
        const TARGET_CHUNK: u64 = 32;
        let mut i = 1u64;
        while i < self.options.samples {
            if let Some(t) = self.options.target_value {
                if best >= t {
                    stop_reason = StopReason::TargetReached;
                    break;
                }
            }
            let n = if self.options.target_value.is_some() {
                TARGET_CHUNK.min(self.options.samples - i)
            } else {
                self.options.samples - i
            };
            let xs: Vec<Vec<f64>> = (0..n)
                .map(|_| {
                    bounds
                        .lo()
                        .iter()
                        .zip(bounds.hi())
                        .map(|(&l, &h)| rng.random_range(l..=h))
                        .collect()
                })
                .collect();
            let values = objective.eval_batch(&xs);
            for (k, (x, v)) in xs.into_iter().zip(values).enumerate() {
                evals += 1;
                if v > best {
                    best = v;
                    best_x = x;
                }
                trace.push(IterRecord {
                    iter: (i + k as u64) as usize,
                    step: 0.0,
                    iter_best: v,
                    running_best: best,
                    evals,
                });
            }
            i += n;
        }

        OptResult {
            best_x,
            best_value: best,
            evals,
            stop_reason,
            trace,
        }
    }

    fn name(&self) -> &'static str {
        "random-search"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CountingObjective, FnObjective};

    #[test]
    fn finds_coarse_optimum() {
        let mut f = FnObjective::new(1, |x: &[f64]| -(x[0] - 0.42).powi(2));
        let r = RandomSearch::new(RsOptions {
            samples: 1000,
            ..RsOptions::default()
        })
        .maximize(&mut f, &Bounds::unit(1), &[0.0], 2);
        assert!((r.best_x[0] - 0.42).abs() < 0.05);
    }

    #[test]
    fn respects_sample_budget() {
        let mut f = CountingObjective::new(FnObjective::new(1, |_: &[f64]| 0.0));
        let r = RandomSearch::new(RsOptions {
            samples: 25,
            ..RsOptions::default()
        })
        .maximize(&mut f, &Bounds::unit(1), &[0.5], 3);
        assert_eq!(f.count(), 25);
        assert_eq!(r.evals, 25);
        assert_eq!(r.trace.len(), 25);
    }

    #[test]
    fn start_point_always_sampled() {
        let mut f = FnObjective::new(1, |x: &[f64]| if x[0] == 0.77 { 100.0 } else { 0.0 });
        let r = RandomSearch::new(RsOptions {
            samples: 5,
            ..RsOptions::default()
        })
        .maximize(&mut f, &Bounds::unit(1), &[0.77], 4);
        assert_eq!(r.best_value, 100.0);
    }

    #[test]
    fn target_stops_early() {
        let mut f = FnObjective::new(1, |x: &[f64]| x[0]);
        let r = RandomSearch::new(RsOptions {
            samples: 10_000,
            target_value: Some(0.5),
        })
        .maximize(&mut f, &Bounds::unit(1), &[0.0], 5);
        assert_eq!(r.stop_reason, StopReason::TargetReached);
        assert!(r.evals < 10_000);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut f = FnObjective::new(2, |x: &[f64]| x[0] * x[1]);
            RandomSearch::default().maximize(&mut f, &Bounds::unit(2), &[0.5, 0.5], seed)
        };
        assert_eq!(run(9).best_x, run(9).best_x);
    }
}
