//! Hyperparameter sweeps for implicit filtering.
//!
//! Section IV-E notes that the number of directions `n`, the initial
//! stencil size `h` and the stopping criteria "can affect the convergence
//! rate of the algorithm in terms of iterations and number of samples".
//! This module makes that study a one-liner: sweep a grid of
//! [`IfOptions`] against an objective *factory* (a fresh objective per
//! cell, so cells do not share noise streams) and rank the cells.

use serde::{Deserialize, Serialize};

use crate::{Bounds, IfOptions, ImplicitFiltering, Objective, Optimizer};

/// One cell of a hyperparameter sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// Directions per iteration used by this cell.
    pub n_directions: usize,
    /// Initial stencil size used by this cell.
    pub initial_step: f64,
    /// Mean best value across the repeats.
    pub mean_best: f64,
    /// Mean evaluations spent across the repeats.
    pub mean_evals: f64,
}

/// Sweeps implicit filtering over a grid of `(n_directions, initial_step)`
/// pairs, averaging `repeats` independent runs per cell; returns the cells
/// sorted best-first.
///
/// `make_objective` is called once per run so each run sees a fresh noise
/// stream; `base` supplies every non-swept option (iteration budget,
/// stopping criteria, ...).
///
/// # Panics
///
/// Panics when `repeats` is zero or a grid axis is empty.
///
/// # Examples
///
/// ```
/// use ascdg_opt::{testfn, tune, Bounds, IfOptions};
///
/// let cells = tune::sweep_if(
///     || testfn::with_noise(testfn::sphere(vec![0.5; 3]), 0.05, 7),
///     &Bounds::unit(3),
///     &[0.2; 3],
///     &IfOptions { max_iters: 20, ..IfOptions::default() },
///     &[4, 12],
///     &[0.1, 0.3],
///     2,
///     99,
/// );
/// assert_eq!(cells.len(), 4);
/// assert!(cells[0].mean_best >= cells[3].mean_best);
/// ```
#[allow(clippy::too_many_arguments)]
pub fn sweep_if<O, F>(
    mut make_objective: F,
    bounds: &Bounds,
    start: &[f64],
    base: &IfOptions,
    n_directions: &[usize],
    initial_steps: &[f64],
    repeats: usize,
    seed: u64,
) -> Vec<SweepCell>
where
    O: Objective,
    F: FnMut() -> O,
{
    assert!(repeats > 0, "need at least one repeat per cell");
    assert!(
        !n_directions.is_empty() && !initial_steps.is_empty(),
        "sweep axes must be non-empty"
    );
    let mut cells = Vec::with_capacity(n_directions.len() * initial_steps.len());
    for (i, &n) in n_directions.iter().enumerate() {
        for (j, &h) in initial_steps.iter().enumerate() {
            let opts = IfOptions {
                n_directions: n,
                initial_step: h,
                ..base.clone()
            };
            let optimizer = ImplicitFiltering::new(opts);
            let mut total_best = 0.0;
            let mut total_evals = 0.0;
            for r in 0..repeats {
                let mut obj = make_objective();
                let cell_seed = seed
                    .wrapping_mul(0x9E37_79B9)
                    .wrapping_add(((i * 131 + j) * repeats + r) as u64);
                let result = optimizer.maximize(&mut obj, bounds, start, cell_seed);
                total_best += result.best_value;
                total_evals += result.evals as f64;
            }
            cells.push(SweepCell {
                n_directions: n,
                initial_step: h,
                mean_best: total_best / repeats as f64,
                mean_evals: total_evals / repeats as f64,
            });
        }
    }
    cells.sort_by(|a, b| {
        b.mean_best
            .partial_cmp(&a.mean_best)
            .expect("finite objective values")
    });
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testfn;

    #[test]
    fn sweep_covers_the_grid_and_sorts() {
        let cells = sweep_if(
            || testfn::sphere(vec![0.6, 0.6]),
            &Bounds::unit(2),
            &[0.1, 0.1],
            &IfOptions {
                max_iters: 15,
                ..IfOptions::default()
            },
            &[2, 6, 12],
            &[0.05, 0.25],
            2,
            1,
        );
        assert_eq!(cells.len(), 6);
        for w in cells.windows(2) {
            assert!(w[0].mean_best >= w[1].mean_best);
        }
        // All grid combinations present exactly once.
        let mut combos: Vec<(usize, u64)> = cells
            .iter()
            .map(|c| (c.n_directions, (c.initial_step * 100.0) as u64))
            .collect();
        combos.sort_unstable();
        assert_eq!(
            combos,
            vec![(2, 5), (2, 25), (6, 5), (6, 25), (12, 5), (12, 25)]
        );
    }

    #[test]
    fn more_directions_use_more_evals() {
        let cells = sweep_if(
            || testfn::sphere(vec![0.5]),
            &Bounds::unit(1),
            &[0.9],
            &IfOptions {
                max_iters: 10,
                min_step: 0.0,
                ..IfOptions::default()
            },
            &[2, 16],
            &[0.2],
            1,
            3,
        );
        let few = cells.iter().find(|c| c.n_directions == 2).unwrap();
        let many = cells.iter().find(|c| c.n_directions == 16).unwrap();
        assert!(many.mean_evals > few.mean_evals);
    }

    #[test]
    #[should_panic(expected = "repeat")]
    fn zero_repeats_panics() {
        let _ = sweep_if(
            || testfn::sphere(vec![0.5]),
            &Bounds::unit(1),
            &[0.5],
            &IfOptions::default(),
            &[2],
            &[0.1],
            0,
            1,
        );
    }
}
