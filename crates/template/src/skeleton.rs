//! Skeletons: templates whose weight settings have been marked as free.
//!
//! The Skeletonizer (in `ascdg-core`) turns a test-template into a
//! [`Skeleton`]: every tunable weight is replaced by a *mark* (`<w0>`,
//! `<w1>`, ...) and every range parameter becomes a weight parameter over
//! subranges. The CDG-Runner then explores the space `[0,1]^d` where `d` is
//! the number of marks; [`Skeleton::instantiate`] maps a point of that space
//! back into a concrete [`TestTemplate`].

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{ParamDef, ParamKind, TemplateError, TestTemplate, Value, WeightedValue};

/// Default scale mapping a setting in `[0,1]` to an integer weight.
pub const DEFAULT_MAX_WEIGHT: u32 = 100;

/// One weight slot of a skeleton parameter: either fixed at a literal
/// weight or free for the optimizer to set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Setting {
    /// The weight is kept at a fixed literal value (e.g. intentional zeros).
    Fixed(u32),
    /// The weight is the `slot`-th coordinate of the settings vector.
    Free {
        /// Index into the skeleton-wide settings vector.
        slot: usize,
    },
}

impl Setting {
    /// Returns `true` for free (marked) settings.
    #[must_use]
    pub fn is_free(&self) -> bool {
        matches!(self, Setting::Free { .. })
    }
}

impl fmt::Display for Setting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Setting::Fixed(w) => write!(f, "{w}"),
            Setting::Free { slot } => write!(f, "<w{slot}>"),
        }
    }
}

/// A skeletonized parameter: always weight-kind, each value carrying a
/// [`Setting`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SkeletonParam {
    name: String,
    values: Vec<(Value, Setting)>,
}

impl SkeletonParam {
    /// Creates a skeleton parameter.
    ///
    /// # Errors
    ///
    /// Returns [`TemplateError::EmptyWeights`] when `values` is empty.
    pub fn new(
        name: impl Into<String>,
        values: impl IntoIterator<Item = (Value, Setting)>,
    ) -> Result<Self, TemplateError> {
        let name = name.into();
        let values: Vec<_> = values.into_iter().collect();
        if values.is_empty() {
            return Err(TemplateError::EmptyWeights(name));
        }
        Ok(SkeletonParam { name, values })
    }

    /// The parameter's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The `(value, setting)` pairs in declaration order.
    #[must_use]
    pub fn values(&self) -> &[(Value, Setting)] {
        &self.values
    }

    /// Number of free slots in this parameter.
    #[must_use]
    pub fn free_count(&self) -> usize {
        self.values.iter().filter(|(_, s)| s.is_free()).count()
    }
}

impl fmt::Display for SkeletonParam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "param {}: weights {{ ", self.name)?;
        for (i, (v, s)) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}: {s}")?;
        }
        f.write_str(" }")
    }
}

/// A skeleton of a test-template (paper Fig. 1(b)).
///
/// # Examples
///
/// ```
/// use ascdg_template::{Setting, Skeleton, SkeletonParam, Value};
///
/// let p = SkeletonParam::new("M", [
///     (Value::ident("load"), Setting::Free { slot: 0 }),
///     (Value::ident("add"), Setting::Fixed(0)),
/// ])?;
/// let sk = Skeleton::new("lsu_skel", [p])?;
/// assert_eq!(sk.num_slots(), 1);
/// let t = sk.instantiate(&[0.5])?;
/// assert_eq!(t.param("M").unwrap().weighted_values().unwrap()[0].weight, 50);
/// # Ok::<(), ascdg_template::TemplateError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Skeleton {
    name: String,
    params: Vec<SkeletonParam>,
    num_slots: usize,
    max_weight: u32,
}

impl Skeleton {
    /// Creates a skeleton from parameters whose free slots must be numbered
    /// `0..d` contiguously (in any order of appearance).
    ///
    /// # Errors
    ///
    /// Returns [`TemplateError::DuplicateParam`] for repeated parameter
    /// names, and [`TemplateError::SettingsDimension`] if slot indices are
    /// not a permutation of `0..d`.
    pub fn new(
        name: impl Into<String>,
        params: impl IntoIterator<Item = SkeletonParam>,
    ) -> Result<Self, TemplateError> {
        let name = name.into();
        let params: Vec<SkeletonParam> = params.into_iter().collect();
        for (i, p) in params.iter().enumerate() {
            if params[..i].iter().any(|q| q.name() == p.name()) {
                return Err(TemplateError::DuplicateParam(p.name().to_owned()));
            }
        }
        let mut slots: Vec<usize> = params
            .iter()
            .flat_map(|p| p.values.iter())
            .filter_map(|(_, s)| match s {
                Setting::Free { slot } => Some(*slot),
                Setting::Fixed(_) => None,
            })
            .collect();
        let d = slots.len();
        slots.sort_unstable();
        slots.dedup();
        if slots.len() != d || slots.iter().copied().ne(0..d) {
            return Err(TemplateError::SettingsDimension {
                expected: d,
                actual: slots.len(),
            });
        }
        Ok(Skeleton {
            name,
            params,
            num_slots: d,
            max_weight: DEFAULT_MAX_WEIGHT,
        })
    }

    /// Parses a skeleton from the canonical text format (with `<wN>` marks).
    ///
    /// # Errors
    ///
    /// Returns [`TemplateError::Parse`] on malformed input.
    pub fn parse(src: &str) -> Result<Self, TemplateError> {
        crate::parser::parse_skeleton(src)
    }

    /// Sets the weight scale used by [`Skeleton::instantiate`].
    #[must_use]
    pub fn with_max_weight(mut self, max_weight: u32) -> Self {
        self.max_weight = max_weight.max(1);
        self
    }

    /// The skeleton's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The skeletonized parameters.
    #[must_use]
    pub fn params(&self) -> &[SkeletonParam] {
        &self.params
    }

    /// Dimension of the settings space (number of `<wN>` marks).
    #[must_use]
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// The weight scale (settings map to `0..=max_weight`).
    #[must_use]
    pub fn max_weight(&self) -> u32 {
        self.max_weight
    }

    /// Human-readable slot labels `Param[value]`, indexed by slot.
    #[must_use]
    pub fn slot_labels(&self) -> Vec<String> {
        let mut labels = vec![String::new(); self.num_slots];
        for p in &self.params {
            for (v, s) in &p.values {
                if let Setting::Free { slot } = s {
                    labels[*slot] = format!("{}[{}]", p.name, v);
                }
            }
        }
        labels
    }

    /// Maps a settings vector in `[0,1]^d` to a concrete test-template.
    ///
    /// Each free slot becomes `round(x * max_weight)` (coordinates are
    /// clamped to `[0,1]` first, so optimizer overshoot is harmless). If
    /// every weight of a parameter would come out zero, its free slots are
    /// raised to weight 1 — a parameter must keep a drawable value.
    ///
    /// # Errors
    ///
    /// Returns [`TemplateError::SettingsDimension`] when `settings` has the
    /// wrong length.
    pub fn instantiate(&self, settings: &[f64]) -> Result<TestTemplate, TemplateError> {
        if settings.len() != self.num_slots {
            return Err(TemplateError::SettingsDimension {
                expected: self.num_slots,
                actual: settings.len(),
            });
        }
        let weight_of = |s: &Setting| -> u32 {
            match s {
                Setting::Fixed(w) => *w,
                Setting::Free { slot } => {
                    let x = settings[*slot].clamp(0.0, 1.0);
                    (x * f64::from(self.max_weight)).round() as u32
                }
            }
        };
        let mut params = Vec::with_capacity(self.params.len());
        for p in &self.params {
            let mut ws: Vec<WeightedValue> = p
                .values
                .iter()
                .map(|(v, s)| WeightedValue::new(v.clone(), weight_of(s)))
                .collect();
            if ws.iter().all(|w| w.weight == 0) {
                let mut raised = false;
                for ((_, s), w) in p.values.iter().zip(ws.iter_mut()) {
                    if s.is_free() {
                        w.weight = 1;
                        raised = true;
                    }
                }
                if !raised {
                    // All-fixed all-zero parameter: raise everything.
                    for w in &mut ws {
                        w.weight = 1;
                    }
                }
            }
            params.push(ParamDef::new(p.name.clone(), ParamKind::Weights(ws))?);
        }
        TestTemplate::new(self.name.clone(), params)
    }
}

impl fmt::Display for Skeleton {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "template {} {{", self.name)?;
        for p in &self.params {
            writeln!(f, "  {p}")?;
        }
        f.write_str("}\n")
    }
}

impl std::str::FromStr for Skeleton {
    type Err = TemplateError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Skeleton::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skel() -> Skeleton {
        Skeleton::new(
            "s",
            [
                SkeletonParam::new(
                    "M",
                    [
                        (Value::ident("load"), Setting::Free { slot: 0 }),
                        (Value::ident("store"), Setting::Free { slot: 1 }),
                        (Value::ident("add"), Setting::Fixed(0)),
                    ],
                )
                .unwrap(),
                SkeletonParam::new(
                    "D",
                    [
                        (Value::SubRange { lo: 0, hi: 50 }, Setting::Free { slot: 2 }),
                        (
                            Value::SubRange { lo: 50, hi: 100 },
                            Setting::Free { slot: 3 },
                        ),
                    ],
                )
                .unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn slot_bookkeeping() {
        let s = skel();
        assert_eq!(s.num_slots(), 4);
        assert_eq!(
            s.slot_labels(),
            vec!["M[load]", "M[store]", "D[[0, 50)]", "D[[50, 100)]"]
        );
        assert_eq!(s.params()[0].free_count(), 2);
    }

    #[test]
    fn non_contiguous_slots_rejected() {
        let p = SkeletonParam::new("M", [(Value::ident("a"), Setting::Free { slot: 1 })]).unwrap();
        assert!(Skeleton::new("s", [p]).is_err());
    }

    #[test]
    fn duplicate_slot_rejected() {
        let p = SkeletonParam::new(
            "M",
            [
                (Value::ident("a"), Setting::Free { slot: 0 }),
                (Value::ident("b"), Setting::Free { slot: 0 }),
            ],
        )
        .unwrap();
        assert!(Skeleton::new("s", [p]).is_err());
    }

    #[test]
    fn instantiate_scales_and_rounds() {
        let s = skel();
        let t = s.instantiate(&[1.0, 0.255, 0.0, 0.5]).unwrap();
        let m = t.param("M").unwrap().weighted_values().unwrap();
        assert_eq!(m[0].weight, 100);
        assert_eq!(m[1].weight, 26);
        assert_eq!(m[2].weight, 0); // fixed zero survives
        let d = t.param("D").unwrap().weighted_values().unwrap();
        assert_eq!(d[0].weight, 0);
        assert_eq!(d[1].weight, 50);
    }

    #[test]
    fn instantiate_clamps_out_of_range() {
        let s = skel();
        let t = s.instantiate(&[2.0, -1.0, 0.5, 0.5]).unwrap();
        let m = t.param("M").unwrap().weighted_values().unwrap();
        assert_eq!(m[0].weight, 100);
        assert_eq!(m[1].weight, 0);
    }

    #[test]
    fn instantiate_guards_all_zero() {
        let s = skel();
        // Both D slots at zero would leave D undrawable; the guard raises
        // free slots to 1.
        let t = s.instantiate(&[0.0, 0.0, 0.0, 0.0]).unwrap();
        let d = t.param("D").unwrap().weighted_values().unwrap();
        assert!(d.iter().any(|w| w.weight > 0));
        let m = t.param("M").unwrap().weighted_values().unwrap();
        // Fixed zero stays zero, free slots raised.
        assert_eq!(m[2].weight, 0);
        assert_eq!(m[0].weight, 1);
    }

    #[test]
    fn wrong_dimension_rejected() {
        let s = skel();
        assert!(matches!(
            s.instantiate(&[0.1]),
            Err(TemplateError::SettingsDimension {
                expected: 4,
                actual: 1
            })
        ));
    }

    #[test]
    fn custom_max_weight() {
        let s = skel().with_max_weight(10);
        let t = s.instantiate(&[1.0, 0.0, 0.0, 1.0]).unwrap();
        assert_eq!(
            t.param("M").unwrap().weighted_values().unwrap()[0].weight,
            10
        );
    }

    #[test]
    fn display_shows_marks() {
        let s = skel();
        let text = s.to_string();
        assert!(text.contains("<w0>"));
        assert!(text.contains("add: 0"));
    }
}
