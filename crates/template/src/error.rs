//! Error type for template parsing, validation and skeleton handling.

use std::fmt;

/// Errors produced by the template subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TemplateError {
    /// Syntax error while parsing the template text format.
    Parse {
        /// 1-based line of the error.
        line: usize,
        /// 1-based column of the error.
        col: usize,
        /// Human-readable description.
        message: String,
    },
    /// A weight parameter was declared with no values.
    EmptyWeights(String),
    /// A range parameter with `lo >= hi`.
    EmptyRange {
        /// Offending parameter name.
        param: String,
        /// Declared inclusive lower bound.
        lo: i64,
        /// Declared exclusive upper bound.
        hi: i64,
    },
    /// All weights of a parameter are zero, so no value can be drawn.
    AllZeroWeights(String),
    /// The same parameter appears twice in one template.
    DuplicateParam(String),
    /// A template references a parameter the registry does not define.
    UnknownParam(String),
    /// An override's kind or values do not match the registry definition.
    IncompatibleOverride {
        /// Offending parameter name.
        param: String,
        /// Why the override is incompatible.
        reason: String,
    },
    /// A settings vector passed to `Skeleton::instantiate` has the wrong
    /// dimension.
    SettingsDimension {
        /// Number of free slots in the skeleton.
        expected: usize,
        /// Length of the supplied vector.
        actual: usize,
    },
    /// The library has no template with the requested name or index.
    UnknownTemplate(String),
    /// A template with this name already exists in the library.
    DuplicateTemplate(String),
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateError::Parse { line, col, message } => {
                write!(f, "parse error at {line}:{col}: {message}")
            }
            TemplateError::EmptyWeights(p) => {
                write!(f, "weight parameter `{p}` declares no values")
            }
            TemplateError::EmptyRange { param, lo, hi } => {
                write!(f, "range parameter `{param}` has empty range [{lo}, {hi})")
            }
            TemplateError::AllZeroWeights(p) => {
                write!(f, "all weights of parameter `{p}` are zero")
            }
            TemplateError::DuplicateParam(p) => {
                write!(f, "parameter `{p}` appears more than once")
            }
            TemplateError::UnknownParam(p) => {
                write!(f, "parameter `{p}` is not defined by the environment")
            }
            TemplateError::IncompatibleOverride { param, reason } => {
                write!(f, "override of `{param}` is incompatible: {reason}")
            }
            TemplateError::SettingsDimension { expected, actual } => write!(
                f,
                "settings vector has {actual} entries but the skeleton has {expected} free slots"
            ),
            TemplateError::UnknownTemplate(n) => write!(f, "unknown template `{n}`"),
            TemplateError::DuplicateTemplate(n) => {
                write!(f, "a template named `{n}` already exists")
            }
        }
    }
}

impl std::error::Error for TemplateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = TemplateError::Parse {
            line: 3,
            col: 14,
            message: "expected `:`".into(),
        };
        assert_eq!(e.to_string(), "parse error at 3:14: expected `:`");
    }

    #[test]
    fn display_names_param() {
        assert!(TemplateError::AllZeroWeights("Mnemonic".into())
            .to_string()
            .contains("Mnemonic"));
        assert!(TemplateError::EmptyRange {
            param: "D".into(),
            lo: 5,
            hi: 5
        }
        .to_string()
        .contains("[5, 5)"));
    }

    #[test]
    fn is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(TemplateError::EmptyWeights("w".into()));
        assert!(e.to_string().contains('w'));
    }
}
