//! The environment's parameter catalogue and template resolution.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::{ParamDef, ParamKind, TemplateError, TestTemplate, Value};

/// The full set of parameters a verification environment exposes, each with
/// its default definition.
///
/// Real environments expose hundreds of parameters; a template overrides a
/// handful. The registry is the source of truth the stimuli generator falls
/// back to for every parameter a template leaves untouched, and the
/// validator that rejects overrides outside a parameter's declared domain.
///
/// # Examples
///
/// ```
/// use ascdg_template::{ParamDef, ParamRegistry, TestTemplate};
///
/// let mut reg = ParamRegistry::new();
/// reg.define(ParamDef::weights("Op", [("load", 50), ("store", 50)])?)?;
/// reg.define(ParamDef::range("Delay", 0, 100)?)?;
///
/// let t = TestTemplate::builder("t").range("Delay", 10, 20)?.build();
/// reg.validate(&t)?;
/// let resolved = reg.resolve(&t)?;
/// // Overridden parameter comes from the template...
/// assert!(resolved.get("Delay").unwrap().kind().is_range());
/// // ...everything else from the registry defaults.
/// assert_eq!(resolved.get("Op").unwrap().kind().total_weight(), 100);
/// # Ok::<(), ascdg_template::TemplateError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ParamRegistry {
    params: Vec<ParamDef>,
}

impl ParamRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        ParamRegistry::default()
    }

    /// Defines a parameter with its default settings.
    ///
    /// # Errors
    ///
    /// Returns [`TemplateError::DuplicateParam`] if the name is taken.
    pub fn define(&mut self, param: ParamDef) -> Result<(), TemplateError> {
        if self.get(param.name()).is_some() {
            return Err(TemplateError::DuplicateParam(param.name().to_owned()));
        }
        self.params.push(param);
        Ok(())
    }

    /// Looks up a parameter's default definition.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&ParamDef> {
        self.params.iter().find(|p| p.name() == name)
    }

    /// Number of defined parameters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Returns `true` when no parameters are defined.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Iterates over all parameter definitions in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = &ParamDef> + '_ {
        self.params.iter()
    }

    /// All parameter names in declaration order.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.params.iter().map(ParamDef::name).collect()
    }

    /// Checks that every override in `template` targets a defined parameter
    /// and stays within its domain.
    ///
    /// Domain rules:
    ///
    /// * weight-over-weight: every overridden value must be declared by the
    ///   default (new values would be meaningless to the generator);
    /// * range-over-range: the override must be a subrange of the default;
    /// * weight-over-range: every value must be an integer or subrange
    ///   inside the default range (this is the shape the Skeletonizer
    ///   produces);
    /// * range-over-weight: rejected.
    ///
    /// # Errors
    ///
    /// Returns [`TemplateError::UnknownParam`] or
    /// [`TemplateError::IncompatibleOverride`].
    pub fn validate(&self, template: &TestTemplate) -> Result<(), TemplateError> {
        for over in template.params() {
            let default = self
                .get(over.name())
                .ok_or_else(|| TemplateError::UnknownParam(over.name().to_owned()))?;
            self.check_compatible(default, over)?;
        }
        Ok(())
    }

    fn check_compatible(&self, default: &ParamDef, over: &ParamDef) -> Result<(), TemplateError> {
        let fail = |reason: String| {
            Err(TemplateError::IncompatibleOverride {
                param: over.name().to_owned(),
                reason,
            })
        };
        match (default.kind(), over.kind()) {
            (ParamKind::Weights(defaults), ParamKind::Weights(overrides)) => {
                for wv in overrides {
                    if !defaults.iter().any(|d| d.value == wv.value) {
                        return fail(format!(
                            "value `{}` is not declared by the environment default",
                            wv.value
                        ));
                    }
                }
                Ok(())
            }
            (&ParamKind::Range { lo, hi }, &ParamKind::Range { lo: olo, hi: ohi }) => {
                if olo < lo || ohi > hi {
                    return fail(format!(
                        "range [{olo}, {ohi}) exceeds the default range [{lo}, {hi})"
                    ));
                }
                Ok(())
            }
            (&ParamKind::Range { lo, hi }, ParamKind::Weights(overrides)) => {
                for wv in overrides {
                    let ok = match &wv.value {
                        Value::Int(i) => *i >= lo && *i < hi,
                        Value::SubRange { lo: slo, hi: shi } => *slo >= lo && *shi <= hi,
                        Value::Ident(_) => false,
                    };
                    if !ok {
                        return fail(format!(
                            "value `{}` falls outside the default range [{lo}, {hi})",
                            wv.value
                        ));
                    }
                }
                Ok(())
            }
            (ParamKind::Weights(_), ParamKind::Range { .. }) => {
                fail("cannot override a weight parameter with a range".to_owned())
            }
        }
    }

    /// Merges a template over the registry defaults.
    ///
    /// # Errors
    ///
    /// Propagates [`ParamRegistry::validate`] failures.
    pub fn resolve(&self, template: &TestTemplate) -> Result<ResolvedParams, TemplateError> {
        self.resolve_over(&self.resolve_defaults(), template)
    }

    /// Pre-resolves the registry defaults alone (no template overrides).
    ///
    /// Batch runners resolve the defaults once and layer each template over
    /// the cached copy with [`ParamRegistry::resolve_over`], so resolving
    /// many templates rebuilds the full parameter map only once.
    #[must_use]
    pub fn resolve_defaults(&self) -> ResolvedParams {
        ResolvedParams {
            effective: self
                .params
                .iter()
                .map(|p| (p.name().to_owned(), p.clone()))
                .collect(),
        }
    }

    /// Merges a template over pre-resolved `defaults`. When `defaults` came
    /// from this registry's [`ParamRegistry::resolve_defaults`], the result
    /// is identical to [`ParamRegistry::resolve`].
    ///
    /// # Errors
    ///
    /// Propagates [`ParamRegistry::validate`] failures.
    pub fn resolve_over(
        &self,
        defaults: &ResolvedParams,
        template: &TestTemplate,
    ) -> Result<ResolvedParams, TemplateError> {
        self.validate(template)?;
        let mut effective = defaults.effective.clone();
        for over in template.params() {
            effective.insert(over.name().to_owned(), over.clone());
        }
        Ok(ResolvedParams { effective })
    }
}

impl Extend<ParamDef> for ParamRegistry {
    /// Extends the registry, panicking on duplicate names (use
    /// [`ParamRegistry::define`] for fallible insertion).
    fn extend<T: IntoIterator<Item = ParamDef>>(&mut self, iter: T) {
        for p in iter {
            self.define(p).expect("duplicate parameter in extend");
        }
    }
}

impl FromIterator<ParamDef> for ParamRegistry {
    fn from_iter<T: IntoIterator<Item = ParamDef>>(iter: T) -> Self {
        let mut r = ParamRegistry::new();
        r.extend(iter);
        r
    }
}

/// The effective parameter set seen by the stimuli generator: template
/// overrides merged over registry defaults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResolvedParams {
    effective: HashMap<String, ParamDef>,
}

impl ResolvedParams {
    /// The effective definition of a parameter.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&ParamDef> {
        self.effective.get(name)
    }

    /// Number of parameters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.effective.len()
    }

    /// Returns `true` when no parameters are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.effective.is_empty()
    }

    /// Iterates over effective definitions in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &ParamDef> + '_ {
        self.effective.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> ParamRegistry {
        let mut reg = ParamRegistry::new();
        reg.define(ParamDef::weights("Op", [("load", 50u32), ("store", 50u32)]).unwrap())
            .unwrap();
        reg.define(ParamDef::range("Delay", 0, 100).unwrap())
            .unwrap();
        reg
    }

    #[test]
    fn define_and_lookup() {
        let reg = registry();
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
        assert_eq!(reg.names(), vec!["Op", "Delay"]);
        assert!(reg.get("Op").is_some());
        assert!(reg.get("op").is_none());
    }

    #[test]
    fn duplicate_define_rejected() {
        let mut reg = registry();
        assert!(matches!(
            reg.define(ParamDef::range("Op", 0, 1).unwrap()),
            Err(TemplateError::DuplicateParam(_))
        ));
    }

    #[test]
    fn unknown_param_rejected() {
        let reg = registry();
        let t = TestTemplate::builder("t")
            .range("Nope", 0, 1)
            .unwrap()
            .build();
        assert!(matches!(
            reg.validate(&t),
            Err(TemplateError::UnknownParam(_))
        ));
    }

    #[test]
    fn weight_over_weight_value_check() {
        let reg = registry();
        let ok = TestTemplate::builder("t")
            .weights("Op", [("load", 90u32)])
            .unwrap()
            .build();
        assert!(reg.validate(&ok).is_ok());
        let bad = TestTemplate::builder("t")
            .weights("Op", [("jump", 5u32)])
            .unwrap()
            .build();
        assert!(matches!(
            reg.validate(&bad),
            Err(TemplateError::IncompatibleOverride { .. })
        ));
    }

    #[test]
    fn range_over_range_containment() {
        let reg = registry();
        let ok = TestTemplate::builder("t")
            .range("Delay", 10, 20)
            .unwrap()
            .build();
        assert!(reg.validate(&ok).is_ok());
        let bad = TestTemplate::builder("t")
            .range("Delay", 50, 200)
            .unwrap()
            .build();
        assert!(reg.validate(&bad).is_err());
    }

    #[test]
    fn weights_over_range_subranges() {
        let reg = registry();
        let ok = TestTemplate::builder("t")
            .weights(
                "Delay",
                [
                    (Value::SubRange { lo: 0, hi: 50 }, 10u32),
                    (Value::SubRange { lo: 50, hi: 100 }, 1u32),
                    (Value::Int(99), 1u32),
                ],
            )
            .unwrap()
            .build();
        assert!(reg.validate(&ok).is_ok());
        let bad = TestTemplate::builder("t")
            .weights("Delay", [(Value::SubRange { lo: 50, hi: 101 }, 1u32)])
            .unwrap()
            .build();
        assert!(reg.validate(&bad).is_err());
        let bad_ident = TestTemplate::builder("t")
            .weights("Delay", [("fast", 1u32)])
            .unwrap()
            .build();
        assert!(reg.validate(&bad_ident).is_err());
    }

    #[test]
    fn range_over_weight_rejected() {
        let reg = registry();
        let bad = TestTemplate::builder("t")
            .range("Op", 0, 1)
            .unwrap()
            .build();
        assert!(reg.validate(&bad).is_err());
    }

    #[test]
    fn resolve_merges() {
        let reg = registry();
        let t = TestTemplate::builder("t")
            .weights("Op", [("store", 100u32)])
            .unwrap()
            .build();
        let r = reg.resolve(&t).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(
            r.get("Op").unwrap().weighted_values().unwrap()[0].value,
            Value::ident("store")
        );
        assert!(r.get("Delay").unwrap().kind().is_range());
        assert!(r.iter().count() == 2 && !r.is_empty());
    }

    #[test]
    fn resolve_over_cached_defaults_matches_resolve() {
        let reg = registry();
        let defaults = reg.resolve_defaults();
        assert_eq!(defaults.len(), 2);
        let t = TestTemplate::builder("t")
            .weights("Op", [("store", 100u32)])
            .unwrap()
            .build();
        assert_eq!(
            reg.resolve_over(&defaults, &t).unwrap(),
            reg.resolve(&t).unwrap()
        );
        // Invalid overrides are still rejected through the cached path.
        let bad = TestTemplate::builder("t")
            .range("Delay", 50, 200)
            .unwrap()
            .build();
        assert!(reg.resolve_over(&defaults, &bad).is_err());
    }

    #[test]
    fn from_iterator() {
        let reg: ParamRegistry = [
            ParamDef::range("A", 0, 1).unwrap(),
            ParamDef::range("B", 0, 1).unwrap(),
        ]
        .into_iter()
        .collect();
        assert_eq!(reg.len(), 2);
    }
}
