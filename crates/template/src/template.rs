//! Test-templates: named sets of parameter overrides.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{ParamDef, TemplateError, Value};

/// A test-template: the input to the biased random stimuli generator.
///
/// A template names the verification scenario and overrides a subset of the
/// environment's parameters; every parameter not mentioned keeps its
/// environment default. Templates print in a canonical text format
/// (the paper's Fig. 1 style) that [`TestTemplate::parse`] accepts back.
///
/// # Examples
///
/// ```
/// use ascdg_template::TestTemplate;
///
/// let t = TestTemplate::builder("dma_stress")
///     .weights("PktLen", [("1", 50), ("8", 30), ("64", 5)])?
///     .range("Gap", 0, 16)?
///     .build();
/// assert_eq!(t.param("Gap").unwrap().kind().is_range(), true);
/// assert!(t.param("Nope").is_none());
/// # Ok::<(), ascdg_template::TemplateError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TestTemplate {
    name: String,
    params: Vec<ParamDef>,
}

impl TestTemplate {
    /// Creates a template from parts, rejecting duplicate parameters.
    ///
    /// # Errors
    ///
    /// Returns [`TemplateError::DuplicateParam`] if a parameter name repeats.
    pub fn new(
        name: impl Into<String>,
        params: impl IntoIterator<Item = ParamDef>,
    ) -> Result<Self, TemplateError> {
        let params: Vec<ParamDef> = params.into_iter().collect();
        for (i, p) in params.iter().enumerate() {
            if params[..i].iter().any(|q| q.name() == p.name()) {
                return Err(TemplateError::DuplicateParam(p.name().to_owned()));
            }
        }
        Ok(TestTemplate {
            name: name.into(),
            params,
        })
    }

    /// Starts a fluent builder.
    pub fn builder(name: impl Into<String>) -> TemplateBuilder {
        TemplateBuilder {
            name: name.into(),
            params: Vec::new(),
            error: None,
        }
    }

    /// Parses the canonical text format.
    ///
    /// # Errors
    ///
    /// Returns [`TemplateError::Parse`] with line/column information on
    /// malformed input, or a validation error for well-formed but unusable
    /// parameters (empty ranges, all-zero weights).
    pub fn parse(src: &str) -> Result<Self, TemplateError> {
        crate::parser::parse_template(src)
    }

    /// The template's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The overridden parameters, in declaration order.
    #[must_use]
    pub fn params(&self) -> &[ParamDef] {
        &self.params
    }

    /// Looks up an override by parameter name.
    #[must_use]
    pub fn param(&self, name: &str) -> Option<&ParamDef> {
        self.params.iter().find(|p| p.name() == name)
    }

    /// Names of all overridden parameters, in declaration order.
    #[must_use]
    pub fn param_names(&self) -> Vec<&str> {
        self.params.iter().map(ParamDef::name).collect()
    }

    /// Returns a copy with a different name (used when mutating templates
    /// during the search phases).
    #[must_use]
    pub fn renamed(&self, name: impl Into<String>) -> TestTemplate {
        TestTemplate {
            name: name.into(),
            params: self.params.clone(),
        }
    }

    /// Returns a copy where the override for `param.name()` is replaced (or
    /// appended if absent).
    #[must_use]
    pub fn with_param(&self, param: ParamDef) -> TestTemplate {
        let mut t = self.clone();
        match t.params.iter_mut().find(|p| p.name() == param.name()) {
            Some(slot) => *slot = param,
            None => t.params.push(param),
        }
        t
    }
}

impl fmt::Display for TestTemplate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "template {} {{", self.name)?;
        for p in &self.params {
            writeln!(f, "  {p}")?;
        }
        f.write_str("}\n")
    }
}

impl std::str::FromStr for TestTemplate {
    type Err = TemplateError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        TestTemplate::parse(s)
    }
}

/// Fluent builder returned by [`TestTemplate::builder`].
///
/// Errors are deferred: the first invalid parameter is reported by
/// [`TemplateBuilder::try_build`]; [`TemplateBuilder::build`] panics on it.
#[derive(Debug)]
pub struct TemplateBuilder {
    name: String,
    params: Vec<ParamDef>,
    error: Option<TemplateError>,
}

impl TemplateBuilder {
    /// Adds a weight parameter.
    ///
    /// # Errors
    ///
    /// Returns the underlying validation error immediately so call sites can
    /// use `?`.
    pub fn weights(
        mut self,
        name: impl Into<String>,
        pairs: impl IntoIterator<Item = (impl Into<Value>, u32)>,
    ) -> Result<Self, TemplateError> {
        let p = ParamDef::weights(name, pairs)?;
        self.params.push(p);
        Ok(self)
    }

    /// Adds a range parameter over `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns the underlying validation error.
    pub fn range(
        mut self,
        name: impl Into<String>,
        lo: i64,
        hi: i64,
    ) -> Result<Self, TemplateError> {
        let p = ParamDef::range(name, lo, hi)?;
        self.params.push(p);
        Ok(self)
    }

    /// Adds an already-constructed parameter.
    #[must_use]
    pub fn param(mut self, param: ParamDef) -> Self {
        self.params.push(param);
        self
    }

    /// Builds the template.
    ///
    /// # Errors
    ///
    /// Returns [`TemplateError::DuplicateParam`] for repeated names.
    pub fn try_build(self) -> Result<TestTemplate, TemplateError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        TestTemplate::new(self.name, self.params)
    }

    /// Builds the template.
    ///
    /// # Panics
    ///
    /// Panics if a parameter name repeats; use
    /// [`TemplateBuilder::try_build`] to handle the error.
    #[must_use]
    pub fn build(self) -> TestTemplate {
        self.try_build().expect("invalid template")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParamKind;

    #[test]
    fn builder_and_lookup() {
        let t = TestTemplate::builder("t")
            .weights("A", [("x", 1u32)])
            .unwrap()
            .range("B", 0, 4)
            .unwrap()
            .build();
        assert_eq!(t.param_names(), vec!["A", "B"]);
        assert!(t.param("A").unwrap().kind().is_weights());
    }

    #[test]
    fn duplicate_param_rejected() {
        let r = TestTemplate::builder("t")
            .range("A", 0, 1)
            .unwrap()
            .range("A", 0, 2)
            .unwrap()
            .try_build();
        assert!(matches!(r, Err(TemplateError::DuplicateParam(_))));
    }

    #[test]
    fn with_param_replaces_or_appends() {
        let t = TestTemplate::builder("t").range("A", 0, 4).unwrap().build();
        let t2 = t.with_param(ParamDef::range("A", 0, 8).unwrap());
        assert_eq!(
            t2.param("A").unwrap().kind(),
            &ParamKind::Range { lo: 0, hi: 8 }
        );
        let t3 = t.with_param(ParamDef::range("B", 1, 2).unwrap());
        assert_eq!(t3.params().len(), 2);
        // Original untouched.
        assert_eq!(t.params().len(), 1);
    }

    #[test]
    fn renamed_keeps_params() {
        let t = TestTemplate::builder("t").range("A", 0, 4).unwrap().build();
        let r = t.renamed("u");
        assert_eq!(r.name(), "u");
        assert_eq!(r.params(), t.params());
    }

    #[test]
    fn display_matches_canonical_format() {
        let t = TestTemplate::builder("lsu")
            .weights("M", [("load", 30u32), ("add", 0u32)])
            .unwrap()
            .build();
        assert_eq!(
            t.to_string(),
            "template lsu {\n  param M: weights { load: 30, add: 0 }\n}\n"
        );
    }

    #[test]
    fn from_str_delegates_to_parse() {
        let t: TestTemplate = "template x { param A: range [0, 2) }".parse().unwrap();
        assert_eq!(t.name(), "x");
    }
}
