//! The parametrized test-template language of AS-CDG.
//!
//! Verification environments for large designs expose hundreds of *parameters*
//! that bias the random stimuli generator. A **test-template** overrides a
//! small subset of them, leaving the rest at their environment defaults. This
//! crate implements the template substrate of the paper:
//!
//! * [`ParamDef`] — a parameter setting of one of the paper's two kinds:
//!   **weight** parameters (value/weight pairs used as a discrete
//!   distribution) and **range** parameters (uniform over a half-open integer
//!   range).
//! * [`TestTemplate`] — a named set of parameter overrides, with a builder,
//!   a canonical text format (modeled on the paper's Fig. 1), a
//!   [parser](TestTemplate::parse) and a printer (`Display`).
//! * [`ParamRegistry`] — an environment's full parameter catalogue with
//!   default definitions; templates are validated against it.
//! * [`Skeleton`] — a template with *marked* (free) weight settings, as
//!   produced by the Skeletonizer; [`Skeleton::instantiate`] turns a point
//!   in `[0,1]^d` back into a concrete [`TestTemplate`].
//! * [`TemplateLibrary`] — an indexed collection of templates (the
//!   environment's existing regression suite).
//!
//! # Examples
//!
//! ```
//! use ascdg_template::TestTemplate;
//!
//! let src = r#"
//! template lsu_stress {
//!   param Mnemonic: weights { load: 30, store: 30, add: 0, sync: 5 }
//!   param CacheDelay: range [0, 100)
//! }
//! "#;
//! let t = TestTemplate::parse(src)?;
//! assert_eq!(t.name(), "lsu_stress");
//! assert_eq!(t.params().len(), 2);
//! // The canonical printer round-trips through the parser.
//! let again = TestTemplate::parse(&t.to_string())?;
//! assert_eq!(t, again);
//! # Ok::<(), ascdg_template::TemplateError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod library;
mod param;
mod parser;
mod registry;
mod skeleton;
mod template;
mod value;

pub use error::TemplateError;
pub use library::TemplateLibrary;
pub use param::{ParamDef, ParamKind, WeightedValue};
pub use registry::{ParamRegistry, ResolvedParams};
pub use skeleton::{Setting, Skeleton, SkeletonParam};
pub use template::{TemplateBuilder, TestTemplate};
pub use value::Value;
