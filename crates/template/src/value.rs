//! Values that weight parameters can assign weights to.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A value a weight parameter distributes over.
///
/// Three forms occur in practice:
///
/// * symbolic values like instruction mnemonics (`load`, `store`);
/// * plain integers (queue depths, opcode ids);
/// * half-open integer subranges `[lo, hi)` — these appear when the
///   Skeletonizer splits a range parameter into weighted subranges so the
///   optimizer can shape the distribution (paper Fig. 1(b)).
///
/// # Examples
///
/// ```
/// use ascdg_template::Value;
/// assert_eq!(Value::ident("load").to_string(), "load");
/// assert_eq!(Value::Int(42).to_string(), "42");
/// assert_eq!(Value::SubRange { lo: 0, hi: 25 }.to_string(), "[0, 25)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    /// A symbolic value (e.g. an instruction mnemonic).
    Ident(String),
    /// A plain integer value.
    Int(i64),
    /// A half-open integer subrange `[lo, hi)`.
    SubRange {
        /// Inclusive lower bound.
        lo: i64,
        /// Exclusive upper bound.
        hi: i64,
    },
}

impl Value {
    /// Convenience constructor for symbolic values.
    pub fn ident(name: impl Into<String>) -> Self {
        Value::Ident(name.into())
    }

    /// Width of the value: 1 for symbols and integers, `hi - lo` for
    /// subranges.
    #[must_use]
    pub fn width(&self) -> i64 {
        match self {
            Value::Ident(_) | Value::Int(_) => 1,
            Value::SubRange { lo, hi } => hi - lo,
        }
    }

    /// Returns `true` for subrange values.
    #[must_use]
    pub fn is_subrange(&self) -> bool {
        matches!(self, Value::SubRange { .. })
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Ident(s) => f.write_str(s),
            Value::Int(i) => write!(f, "{i}"),
            Value::SubRange { lo, hi } => write!(f, "[{lo}, {hi})"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Ident(s.to_owned())
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Value::ident("sync").to_string(), "sync");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::SubRange { lo: 25, hi: 50 }.to_string(), "[25, 50)");
    }

    #[test]
    fn widths() {
        assert_eq!(Value::ident("x").width(), 1);
        assert_eq!(Value::Int(7).width(), 1);
        assert_eq!(Value::SubRange { lo: 10, hi: 30 }.width(), 20);
        assert!(Value::SubRange { lo: 0, hi: 1 }.is_subrange());
        assert!(!Value::Int(0).is_subrange());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from("a"), Value::Ident("a".into()));
        assert_eq!(Value::from(5i64), Value::Int(5));
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [Value::Int(2), Value::ident("a"), Value::Int(1)];
        v.sort();
        assert_eq!(v[0], Value::ident("a"));
    }
}
