//! Parser for the canonical template/skeleton text format.
//!
//! The grammar (comments run `//` to end of line):
//!
//! ```text
//! file    := "template" IDENT "{" param* "}"
//! param   := "param" IDENT ":" kind
//! kind    := "weights" "{" entry ("," entry)* ","? "}"
//!          | "range" "[" INT "," INT ")"
//! entry   := value ":" setting
//! value   := IDENT | INT | "[" INT "," INT ")"
//! setting := UINT | "<w" UINT ">"          // marks only in skeletons
//! ```

use crate::{
    ParamDef, ParamKind, Setting, Skeleton, SkeletonParam, TemplateError, TestTemplate, Value,
    WeightedValue,
};

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Mark(usize),
    LBrace,
    RBrace,
    LBracket,
    RParen,
    Colon,
    Comma,
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(i) => write!(f, "`{i}`"),
            Tok::Mark(n) => write!(f, "`<w{n}>`"),
            Tok::LBrace => f.write_str("`{`"),
            Tok::RBrace => f.write_str("`}`"),
            Tok::LBracket => f.write_str("`[`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::Colon => f.write_str("`:`"),
            Tok::Comma => f.write_str("`,`"),
            Tok::Eof => f.write_str("end of input"),
        }
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

type Spanned = (Tok, usize, usize);

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> TemplateError {
        TemplateError::Parse {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn next_token(&mut self) -> Result<Spanned, TemplateError> {
        self.skip_trivia();
        let (line, col) = (self.line, self.col);
        let Some(c) = self.peek() else {
            return Ok((Tok::Eof, line, col));
        };
        let tok = match c {
            b'{' => {
                self.bump();
                Tok::LBrace
            }
            b'}' => {
                self.bump();
                Tok::RBrace
            }
            b'[' => {
                self.bump();
                Tok::LBracket
            }
            b')' => {
                self.bump();
                Tok::RParen
            }
            b':' => {
                self.bump();
                Tok::Colon
            }
            b',' => {
                self.bump();
                Tok::Comma
            }
            b'<' => {
                self.bump();
                if self.peek() != Some(b'w') {
                    return Err(self.err("expected `w` after `<` in mark"));
                }
                self.bump();
                let n = self.lex_uint()?;
                if self.peek() != Some(b'>') {
                    return Err(self.err("expected `>` closing mark"));
                }
                self.bump();
                Tok::Mark(n as usize)
            }
            b'-' | b'0'..=b'9' => {
                let neg = c == b'-';
                if neg {
                    self.bump();
                    if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
                        return Err(self.err("expected digits after `-`"));
                    }
                }
                let n = self.lex_uint()?;
                Tok::Int(if neg { -(n as i64) } else { n as i64 })
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while self
                    .peek()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
                {
                    self.bump();
                }
                Tok::Ident(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
            }
            other => {
                return Err(self.err(format!("unexpected character `{}`", other as char)));
            }
        };
        Ok((tok, line, col))
    }

    fn lex_uint(&mut self) -> Result<u64, TemplateError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        if start == self.pos {
            return Err(self.err("expected a number"));
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .expect("digits are ascii")
            .parse()
            .map_err(|_| self.err("number out of range"))
    }
}

/// A parsed weight entry before template/skeleton specialization.
enum RawSetting {
    Lit(u32),
    Mark(usize),
}

enum RawKind {
    Weights(Vec<(Value, RawSetting)>),
    Range { lo: i64, hi: i64 },
}

struct RawParam {
    name: String,
    kind: RawKind,
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    current: Spanned,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Self, TemplateError> {
        let mut lexer = Lexer::new(src);
        let current = lexer.next_token()?;
        Ok(Parser { lexer, current })
    }

    fn err_here(&self, message: impl Into<String>) -> TemplateError {
        TemplateError::Parse {
            line: self.current.1,
            col: self.current.2,
            message: message.into(),
        }
    }

    fn advance(&mut self) -> Result<Tok, TemplateError> {
        let next = self.lexer.next_token()?;
        Ok(std::mem::replace(&mut self.current, next).0)
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), TemplateError> {
        if &self.current.0 == tok {
            self.advance()?;
            Ok(())
        } else {
            Err(self.err_here(format!("expected {tok}, found {}", self.current.0)))
        }
    }

    fn expect_ident(&mut self) -> Result<String, TemplateError> {
        match self.current.0.clone() {
            Tok::Ident(s) => {
                self.advance()?;
                Ok(s)
            }
            other => Err(self.err_here(format!("expected an identifier, found {other}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), TemplateError> {
        match &self.current.0 {
            Tok::Ident(s) if s == kw => {
                self.advance()?;
                Ok(())
            }
            other => Err(self.err_here(format!("expected `{kw}`, found {other}"))),
        }
    }

    fn expect_int(&mut self) -> Result<i64, TemplateError> {
        match self.current.0 {
            Tok::Int(i) => {
                self.advance()?;
                Ok(i)
            }
            ref other => Err(self.err_here(format!("expected an integer, found {other}"))),
        }
    }

    fn parse_file(&mut self) -> Result<(String, Vec<RawParam>), TemplateError> {
        self.expect_keyword("template")?;
        let name = self.expect_ident()?;
        self.expect(&Tok::LBrace)?;
        let mut params = Vec::new();
        while self.current.0 != Tok::RBrace {
            params.push(self.parse_param()?);
        }
        self.expect(&Tok::RBrace)?;
        if self.current.0 != Tok::Eof {
            return Err(self.err_here(format!("unexpected {} after closing `}}`", self.current.0)));
        }
        Ok((name, params))
    }

    fn parse_param(&mut self) -> Result<RawParam, TemplateError> {
        self.expect_keyword("param")?;
        let name = self.expect_ident()?;
        self.expect(&Tok::Colon)?;
        let kind = match &self.current.0 {
            Tok::Ident(k) if k == "weights" => {
                self.advance()?;
                self.expect(&Tok::LBrace)?;
                let mut entries = Vec::new();
                loop {
                    if self.current.0 == Tok::RBrace {
                        break;
                    }
                    let value = self.parse_value()?;
                    self.expect(&Tok::Colon)?;
                    let setting = self.parse_setting()?;
                    entries.push((value, setting));
                    if self.current.0 == Tok::Comma {
                        self.advance()?;
                    } else {
                        break;
                    }
                }
                self.expect(&Tok::RBrace)?;
                RawKind::Weights(entries)
            }
            Tok::Ident(k) if k == "range" => {
                self.advance()?;
                let (lo, hi) = self.parse_subrange()?;
                RawKind::Range { lo, hi }
            }
            other => {
                return Err(self.err_here(format!("expected `weights` or `range`, found {other}")));
            }
        };
        Ok(RawParam { name, kind })
    }

    fn parse_subrange(&mut self) -> Result<(i64, i64), TemplateError> {
        self.expect(&Tok::LBracket)?;
        let lo = self.expect_int()?;
        self.expect(&Tok::Comma)?;
        let hi = self.expect_int()?;
        self.expect(&Tok::RParen)?;
        Ok((lo, hi))
    }

    fn parse_value(&mut self) -> Result<Value, TemplateError> {
        match self.current.0.clone() {
            Tok::Ident(s) => {
                self.advance()?;
                Ok(Value::Ident(s))
            }
            Tok::Int(i) => {
                self.advance()?;
                Ok(Value::Int(i))
            }
            Tok::LBracket => {
                let (lo, hi) = self.parse_subrange()?;
                Ok(Value::SubRange { lo, hi })
            }
            other => Err(self.err_here(format!("expected a value, found {other}"))),
        }
    }

    fn parse_setting(&mut self) -> Result<RawSetting, TemplateError> {
        match self.current.0 {
            Tok::Int(i) if i >= 0 => {
                let w =
                    u32::try_from(i).map_err(|_| self.err_here("weight out of range for u32"))?;
                self.advance()?;
                Ok(RawSetting::Lit(w))
            }
            Tok::Int(_) => Err(self.err_here("weights must be non-negative")),
            Tok::Mark(n) => {
                self.advance()?;
                Ok(RawSetting::Mark(n))
            }
            ref other => Err(self.err_here(format!("expected a weight, found {other}"))),
        }
    }
}

/// Parses a concrete test-template (marks rejected).
pub(crate) fn parse_template(src: &str) -> Result<TestTemplate, TemplateError> {
    let mut p = Parser::new(src)?;
    let (name, raw_params) = p.parse_file()?;
    let mut params = Vec::with_capacity(raw_params.len());
    for rp in raw_params {
        let kind = match rp.kind {
            RawKind::Weights(entries) => {
                let mut ws = Vec::with_capacity(entries.len());
                for (v, s) in entries {
                    match s {
                        RawSetting::Lit(w) => ws.push(WeightedValue::new(v, w)),
                        RawSetting::Mark(n) => {
                            return Err(TemplateError::Parse {
                                line: 0,
                                col: 0,
                                message: format!(
                                    "mark `<w{n}>` is only legal in a skeleton (parameter `{}`)",
                                    rp.name
                                ),
                            });
                        }
                    }
                }
                ParamKind::Weights(ws)
            }
            RawKind::Range { lo, hi } => ParamKind::Range { lo, hi },
        };
        params.push(ParamDef::new(rp.name, kind)?);
    }
    TestTemplate::new(name, params)
}

/// Parses a skeleton (marks allowed; range parameters rejected, since the
/// Skeletonizer always rewrites them to weighted subranges).
pub(crate) fn parse_skeleton(src: &str) -> Result<Skeleton, TemplateError> {
    let mut p = Parser::new(src)?;
    let (name, raw_params) = p.parse_file()?;
    let mut params = Vec::with_capacity(raw_params.len());
    for rp in raw_params {
        match rp.kind {
            RawKind::Weights(entries) => {
                let values = entries.into_iter().map(|(v, s)| {
                    let setting = match s {
                        RawSetting::Lit(w) => Setting::Fixed(w),
                        RawSetting::Mark(n) => Setting::Free { slot: n },
                    };
                    (v, setting)
                });
                params.push(SkeletonParam::new(rp.name, values)?);
            }
            RawKind::Range { .. } => {
                return Err(TemplateError::Parse {
                    line: 0,
                    col: 0,
                    message: format!(
                        "range parameter `{}` cannot appear in a skeleton; \
                         skeletonize it into weighted subranges first",
                        rp.name
                    ),
                });
            }
        }
    }
    Skeleton::new(name, params)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_fig1_template() {
        let src = r#"
            // Fig. 1(a): stressing the load store unit
            template lsu_stress {
              param Mnemonic: weights { load: 30, store: 30, add: 0, sync: 5 }
              param CacheDelay: range [0, 100)
            }
        "#;
        let t = parse_template(src).unwrap();
        assert_eq!(t.name(), "lsu_stress");
        let m = t.param("Mnemonic").unwrap().weighted_values().unwrap();
        assert_eq!(m.len(), 4);
        assert_eq!(m[3], WeightedValue::new("sync", 5));
        assert_eq!(
            t.param("CacheDelay").unwrap().kind(),
            &ParamKind::Range { lo: 0, hi: 100 }
        );
    }

    #[test]
    fn parses_paper_fig1_skeleton() {
        let src = r#"
            // Fig. 1(b): the induced skeleton
            template lsu_stress {
              param Mnemonic: weights { load: <w0>, store: <w1>, add: 0, sync: <w2> }
              param CacheDelay: weights { [0, 25): <w3>, [25, 50): <w4>, [50, 75): <w5>, [75, 100): <w6> }
            }
        "#;
        let sk = parse_skeleton(src).unwrap();
        assert_eq!(sk.num_slots(), 7);
        assert_eq!(sk.params()[1].values().len(), 4);
        assert_eq!(
            sk.params()[0].values()[2],
            (Value::ident("add"), Setting::Fixed(0))
        );
    }

    #[test]
    fn template_rejects_marks() {
        let src = "template t { param A: weights { x: <w0> } }";
        let err = parse_template(src).unwrap_err();
        assert!(err.to_string().contains("skeleton"));
    }

    #[test]
    fn skeleton_rejects_ranges() {
        let src = "template t { param A: range [0, 5) }";
        let err = parse_skeleton(src).unwrap_err();
        assert!(err.to_string().contains("subranges"));
    }

    #[test]
    fn error_positions_are_reported() {
        let src = "template t {\n  param A weights { x: 1 }\n}";
        match parse_template(src).unwrap_err() {
            TemplateError::Parse { line, col, message } => {
                assert_eq!(line, 2);
                assert!(col > 1);
                assert!(message.contains("expected `:`"), "{message}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn trailing_comma_and_negative_ints() {
        let src = "template t { param A: weights { -5: 1, 3: 2, } }";
        let t = parse_template(src).unwrap();
        let ws = t.param("A").unwrap().weighted_values().unwrap();
        assert_eq!(ws[0].value, Value::Int(-5));
    }

    #[test]
    fn rejects_negative_weight() {
        let src = "template t { param A: weights { x: -1 } }";
        assert!(parse_template(src).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        let src = "template t { } extra";
        let err = parse_template(src).unwrap_err();
        assert!(err.to_string().contains("after closing"));
    }

    #[test]
    fn rejects_unknown_character() {
        assert!(parse_template("template t { param A: weights { x: 1 } } $").is_err());
    }

    #[test]
    fn empty_template_parses() {
        let t = parse_template("template empty { }").unwrap();
        assert!(t.params().is_empty());
    }

    #[test]
    fn validation_errors_surface() {
        let src = "template t { param A: range [9, 3) }";
        assert!(matches!(
            parse_template(src),
            Err(TemplateError::EmptyRange { .. })
        ));
        let src = "template t { param A: weights { x: 0 } }";
        assert!(matches!(
            parse_template(src),
            Err(TemplateError::AllZeroWeights(_))
        ));
    }

    #[test]
    fn malformed_marks() {
        assert!(parse_skeleton("template t { param A: weights { x: <q0> } }").is_err());
        assert!(parse_skeleton("template t { param A: weights { x: <w> } }").is_err());
        assert!(parse_skeleton("template t { param A: weights { x: <w0 } }").is_err());
    }
}
