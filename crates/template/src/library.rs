//! The environment's existing test-template collection.

use serde::{Deserialize, Serialize};

use crate::{TemplateError, TestTemplate};

/// An indexed collection of test-templates — the regression suite a
/// verification team has accumulated, which the coarse-grained search mines
/// for relevant parameters.
///
/// Templates are addressed by a stable dense index (the order of insertion),
/// which other crates map to their own `TemplateId`s.
///
/// # Examples
///
/// ```
/// use ascdg_template::{TemplateLibrary, TestTemplate};
///
/// let mut lib = TemplateLibrary::new();
/// let idx = lib.push(TestTemplate::builder("smoke").build())?;
/// assert_eq!(idx, 0);
/// assert_eq!(lib.get(0).unwrap().name(), "smoke");
/// assert!(lib.by_name("smoke").is_some());
/// # Ok::<(), ascdg_template::TemplateError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TemplateLibrary {
    templates: Vec<TestTemplate>,
}

impl TemplateLibrary {
    /// Creates an empty library.
    #[must_use]
    pub fn new() -> Self {
        TemplateLibrary::default()
    }

    /// Adds a template, returning its index.
    ///
    /// # Errors
    ///
    /// Returns [`TemplateError::DuplicateTemplate`] when a template with the
    /// same name already exists.
    pub fn push(&mut self, template: TestTemplate) -> Result<usize, TemplateError> {
        if self.by_name(template.name()).is_some() {
            return Err(TemplateError::DuplicateTemplate(template.name().to_owned()));
        }
        self.templates.push(template);
        Ok(self.templates.len() - 1)
    }

    /// The template at `index`, if any.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<&TestTemplate> {
        self.templates.get(index)
    }

    /// Finds a template (and its index) by name.
    #[must_use]
    pub fn by_name(&self, name: &str) -> Option<(usize, &TestTemplate)> {
        self.templates
            .iter()
            .enumerate()
            .find(|(_, t)| t.name() == name)
    }

    /// Number of templates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Returns `true` when the library holds no templates.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// Iterates over `(index, template)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &TestTemplate)> + '_ {
        self.templates.iter().enumerate()
    }

    /// Loads every `*.tpl` file of a directory (sorted by file name, so
    /// indices are stable across machines).
    ///
    /// # Errors
    ///
    /// Returns [`TemplateError::Parse`] (with the offending file named in
    /// the message) for unparsable files and
    /// [`TemplateError::DuplicateTemplate`] for repeated template names.
    /// I/O failures are reported as parse errors at 0:0.
    pub fn load_dir(dir: impl AsRef<std::path::Path>) -> Result<Self, TemplateError> {
        let io_err = |msg: String| TemplateError::Parse {
            line: 0,
            col: 0,
            message: msg,
        };
        let dir = dir.as_ref();
        let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| io_err(format!("cannot read `{}`: {e}", dir.display())))?
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "tpl"))
            .collect();
        paths.sort();
        let mut lib = TemplateLibrary::new();
        for path in paths {
            let src = std::fs::read_to_string(&path)
                .map_err(|e| io_err(format!("cannot read `{}`: {e}", path.display())))?;
            let template = TestTemplate::parse(&src).map_err(|e| match e {
                TemplateError::Parse { line, col, message } => TemplateError::Parse {
                    line,
                    col,
                    message: format!("{}: {message}", path.display()),
                },
                other => other,
            })?;
            lib.push(template)?;
        }
        Ok(lib)
    }

    /// Writes every template to `<dir>/<name>.tpl` in the canonical text
    /// format (creating the directory if needed).
    ///
    /// # Errors
    ///
    /// Reports I/O failures as [`TemplateError::Parse`] at 0:0 with the
    /// underlying message.
    pub fn save_dir(&self, dir: impl AsRef<std::path::Path>) -> Result<(), TemplateError> {
        let io_err = |msg: String| TemplateError::Parse {
            line: 0,
            col: 0,
            message: msg,
        };
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| io_err(format!("cannot create `{}`: {e}", dir.display())))?;
        for (_, t) in self.iter() {
            let path = dir.join(format!("{}.tpl", t.name()));
            std::fs::write(&path, t.to_string())
                .map_err(|e| io_err(format!("cannot write `{}`: {e}", path.display())))?;
        }
        Ok(())
    }
}

impl FromIterator<TestTemplate> for TemplateLibrary {
    /// Collects templates, panicking on duplicate names (use
    /// [`TemplateLibrary::push`] for fallible insertion).
    fn from_iter<T: IntoIterator<Item = TestTemplate>>(iter: T) -> Self {
        let mut lib = TemplateLibrary::new();
        for t in iter {
            lib.push(t).expect("duplicate template name in collection");
        }
        lib
    }
}

impl Extend<TestTemplate> for TemplateLibrary {
    fn extend<T: IntoIterator<Item = TestTemplate>>(&mut self, iter: T) {
        for t in iter {
            self.push(t).expect("duplicate template name in extend");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(name: &str) -> TestTemplate {
        TestTemplate::builder(name).build()
    }

    #[test]
    fn push_and_lookup() {
        let mut lib = TemplateLibrary::new();
        assert!(lib.is_empty());
        assert_eq!(lib.push(t("a")).unwrap(), 0);
        assert_eq!(lib.push(t("b")).unwrap(), 1);
        assert_eq!(lib.len(), 2);
        assert_eq!(lib.get(1).unwrap().name(), "b");
        assert!(lib.get(2).is_none());
        let (i, found) = lib.by_name("a").unwrap();
        assert_eq!((i, found.name()), (0, "a"));
        assert!(lib.by_name("zzz").is_none());
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut lib = TemplateLibrary::new();
        lib.push(t("a")).unwrap();
        assert!(matches!(
            lib.push(t("a")),
            Err(TemplateError::DuplicateTemplate(_))
        ));
    }

    #[test]
    fn iteration_and_collect() {
        let lib: TemplateLibrary = [t("x"), t("y")].into_iter().collect();
        let names: Vec<_> = lib.iter().map(|(_, t)| t.name().to_owned()).collect();
        assert_eq!(names, vec!["x", "y"]);
    }

    #[test]
    fn save_and_load_dir_round_trips() {
        let dir = std::env::temp_dir().join(format!(
            "ascdg_lib_test_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let lib: TemplateLibrary = [
            TestTemplate::builder("alpha")
                .range("P", 0, 4)
                .unwrap()
                .build(),
            TestTemplate::builder("beta")
                .weights("Q", [("x", 3u32), ("y", 1u32)])
                .unwrap()
                .build(),
        ]
        .into_iter()
        .collect();
        lib.save_dir(&dir).unwrap();
        let loaded = TemplateLibrary::load_dir(&dir).unwrap();
        assert_eq!(loaded, lib);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_dir_reports_bad_files_with_path() {
        let dir = std::env::temp_dir().join(format!(
            "ascdg_lib_bad_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("broken.tpl"), "template { nope").unwrap();
        let err = TemplateLibrary::load_dir(&dir).unwrap_err();
        assert!(err.to_string().contains("broken.tpl"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_missing_dir_errors() {
        assert!(TemplateLibrary::load_dir("/definitely/not/here").is_err());
    }
}
