//! Parameter definitions: the paper's two parameter kinds.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{TemplateError, Value};

/// One value/weight pair of a weight parameter.
///
/// # Examples
///
/// ```
/// use ascdg_template::{Value, WeightedValue};
/// let wv = WeightedValue::new("load", 30);
/// assert_eq!(wv.value, Value::ident("load"));
/// assert_eq!(wv.weight, 30);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WeightedValue {
    /// The value being weighted.
    pub value: Value,
    /// Its non-negative selection weight.
    pub weight: u32,
}

impl WeightedValue {
    /// Creates a weighted value.
    pub fn new(value: impl Into<Value>, weight: u32) -> Self {
        WeightedValue {
            value: value.into(),
            weight,
        }
    }
}

impl fmt::Display for WeightedValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.value, self.weight)
    }
}

/// The two parameter kinds of Section III of the paper.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParamKind {
    /// A set of value/weight pairs; the generator draws values with
    /// probability proportional to weight.
    Weights(Vec<WeightedValue>),
    /// A half-open integer range `[lo, hi)`; the generator draws uniformly.
    Range {
        /// Inclusive lower bound.
        lo: i64,
        /// Exclusive upper bound.
        hi: i64,
    },
}

impl ParamKind {
    /// Total weight of a weight parameter (0 for ranges).
    #[must_use]
    pub fn total_weight(&self) -> u64 {
        match self {
            ParamKind::Weights(ws) => ws.iter().map(|w| u64::from(w.weight)).sum(),
            ParamKind::Range { .. } => 0,
        }
    }

    /// Returns `true` for weight parameters.
    #[must_use]
    pub fn is_weights(&self) -> bool {
        matches!(self, ParamKind::Weights(_))
    }

    /// Returns `true` for range parameters.
    #[must_use]
    pub fn is_range(&self) -> bool {
        matches!(self, ParamKind::Range { .. })
    }
}

/// A named parameter setting: the unit of override in a test-template and
/// the unit of definition in a [`crate::ParamRegistry`].
///
/// # Examples
///
/// ```
/// use ascdg_template::ParamDef;
///
/// let p = ParamDef::weights("Mnemonic", [("load", 30), ("store", 30)])?;
/// assert!(p.kind().is_weights());
/// let d = ParamDef::range("CacheDelay", 0, 100)?;
/// assert_eq!(d.to_string(), "param CacheDelay: range [0, 100)");
/// # Ok::<(), ascdg_template::TemplateError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamDef {
    name: String,
    kind: ParamKind,
}

impl ParamDef {
    /// Creates a parameter from an already-validated kind.
    ///
    /// # Errors
    ///
    /// Returns [`TemplateError::EmptyWeights`], [`TemplateError::AllZeroWeights`]
    /// or [`TemplateError::EmptyRange`] when the kind is not usable for
    /// generation.
    pub fn new(name: impl Into<String>, kind: ParamKind) -> Result<Self, TemplateError> {
        let name = name.into();
        match &kind {
            ParamKind::Weights(ws) => {
                if ws.is_empty() {
                    return Err(TemplateError::EmptyWeights(name));
                }
                if ws.iter().all(|w| w.weight == 0) {
                    return Err(TemplateError::AllZeroWeights(name));
                }
            }
            ParamKind::Range { lo, hi } => {
                if lo >= hi {
                    return Err(TemplateError::EmptyRange {
                        param: name,
                        lo: *lo,
                        hi: *hi,
                    });
                }
            }
        }
        Ok(ParamDef { name, kind })
    }

    /// Creates a weight parameter from `(value, weight)` pairs.
    ///
    /// # Errors
    ///
    /// Same as [`ParamDef::new`].
    pub fn weights(
        name: impl Into<String>,
        pairs: impl IntoIterator<Item = (impl Into<Value>, u32)>,
    ) -> Result<Self, TemplateError> {
        let ws = pairs
            .into_iter()
            .map(|(v, w)| WeightedValue::new(v, w))
            .collect();
        ParamDef::new(name, ParamKind::Weights(ws))
    }

    /// Creates a range parameter over `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Same as [`ParamDef::new`].
    pub fn range(name: impl Into<String>, lo: i64, hi: i64) -> Result<Self, TemplateError> {
        ParamDef::new(name, ParamKind::Range { lo, hi })
    }

    /// The parameter's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameter's kind and settings.
    #[must_use]
    pub fn kind(&self) -> &ParamKind {
        &self.kind
    }

    /// The weighted values of a weight parameter, or `None` for ranges.
    #[must_use]
    pub fn weighted_values(&self) -> Option<&[WeightedValue]> {
        match &self.kind {
            ParamKind::Weights(ws) => Some(ws),
            ParamKind::Range { .. } => None,
        }
    }

    /// Replaces the weight of the `idx`-th value, returning a new def.
    ///
    /// # Panics
    ///
    /// Panics if the parameter is a range parameter or `idx` is out of
    /// range. Intended for skeleton instantiation, which controls both.
    #[must_use]
    pub fn with_weight(&self, idx: usize, weight: u32) -> ParamDef {
        let mut clone = self.clone();
        match &mut clone.kind {
            ParamKind::Weights(ws) => ws[idx].weight = weight,
            ParamKind::Range { .. } => panic!("with_weight on range parameter `{}`", self.name),
        }
        clone
    }
}

impl fmt::Display for ParamDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParamKind::Weights(ws) => {
                write!(f, "param {}: weights {{ ", self.name)?;
                for (i, w) in ws.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{w}")?;
                }
                f.write_str(" }")
            }
            ParamKind::Range { lo, hi } => {
                write!(f, "param {}: range [{lo}, {hi})", self.name)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_validation() {
        assert!(matches!(
            ParamDef::weights("p", Vec::<(Value, u32)>::new()),
            Err(TemplateError::EmptyWeights(_))
        ));
        assert!(matches!(
            ParamDef::weights("p", [("a", 0u32), ("b", 0u32)]),
            Err(TemplateError::AllZeroWeights(_))
        ));
        let ok = ParamDef::weights("p", [("a", 0u32), ("b", 1u32)]).unwrap();
        assert_eq!(ok.kind().total_weight(), 1);
    }

    #[test]
    fn range_validation() {
        assert!(ParamDef::range("r", 5, 5).is_err());
        assert!(ParamDef::range("r", 6, 5).is_err());
        let ok = ParamDef::range("r", 0, 1).unwrap();
        assert!(ok.kind().is_range());
        assert!(!ok.kind().is_weights());
        assert_eq!(ok.weighted_values(), None);
    }

    #[test]
    fn display_forms() {
        let w = ParamDef::weights("M", [("load", 30u32), ("add", 0u32)]).unwrap();
        assert_eq!(w.to_string(), "param M: weights { load: 30, add: 0 }");
        let r = ParamDef::range("D", 0, 100).unwrap();
        assert_eq!(r.to_string(), "param D: range [0, 100)");
    }

    #[test]
    fn with_weight_replaces() {
        let w = ParamDef::weights("M", [("a", 1u32), ("b", 2u32)]).unwrap();
        let w2 = w.with_weight(1, 99);
        assert_eq!(w2.weighted_values().unwrap()[1].weight, 99);
        assert_eq!(w.weighted_values().unwrap()[1].weight, 2);
    }

    #[test]
    #[should_panic(expected = "with_weight on range")]
    fn with_weight_on_range_panics() {
        let r = ParamDef::range("D", 0, 10).unwrap();
        let _ = r.with_weight(0, 1);
    }

    #[test]
    fn int_and_subrange_values() {
        let p = ParamDef::weights(
            "Q",
            [
                (Value::Int(1), 5u32),
                (Value::SubRange { lo: 0, hi: 25 }, 10u32),
            ],
        )
        .unwrap();
        assert_eq!(p.to_string(), "param Q: weights { 1: 5, [0, 25): 10 }");
    }
}
