//! The coverage repository: accumulated hit statistics, globally and per
//! test-template.

use parking_lot::{RwLock, RwLockReadGuard};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::{
    CoverageError, CoverageModel, CoverageVector, EventId, StatusCounts, StatusPolicy, TemplateId,
};

/// Accumulated hits/simulations for one event (or one template × event cell).
///
/// # Examples
///
/// ```
/// use ascdg_coverage::HitStats;
/// let s = HitStats { hits: 25, sims: 1000 };
/// assert!((s.rate() - 0.025).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HitStats {
    /// Number of simulations that hit the event.
    pub hits: u64,
    /// Number of simulations recorded.
    pub sims: u64,
}

impl HitStats {
    /// The empirical hit probability (0 when no simulations were recorded).
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.sims == 0 {
            0.0
        } else {
            self.hits as f64 / self.sims as f64
        }
    }

    /// Accumulates another cell into this one.
    pub fn merge(&mut self, other: HitStats) {
        self.hits += other.hits;
        self.sims += other.sims;
    }

    /// The Wilson score interval of the hit probability at confidence
    /// `z` (e.g. 1.96 for 95%). Returns `(low, high)` within `[0, 1]`;
    /// `(0, 1)` when no simulations were recorded.
    ///
    /// Verification teams use this to decide whether a lightly-hit event's
    /// rate is statistically distinguishable from zero before retiring a
    /// template.
    ///
    /// # Examples
    ///
    /// ```
    /// use ascdg_coverage::HitStats;
    ///
    /// let s = HitStats { hits: 5, sims: 1000 };
    /// let (lo, hi) = s.wilson_interval(1.96);
    /// assert!(lo > 0.0 && lo < 0.005);
    /// assert!(hi > 0.005 && hi < 0.02);
    /// // Zero hits: the lower bound is exactly zero.
    /// let z = HitStats { hits: 0, sims: 1000 };
    /// assert_eq!(z.wilson_interval(1.96).0, 0.0);
    /// ```
    #[must_use]
    pub fn wilson_interval(&self, z: f64) -> (f64, f64) {
        if self.sims == 0 {
            return (0.0, 1.0);
        }
        // The quantile enters the formula symmetrically; a sign slip at the
        // call site must not invert the interval.
        let z = z.abs();
        let n = self.sims as f64;
        let p = self.rate();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        ((center - half).max(0.0), (center + half).min(1.0))
    }
}

/// Per-event counters for one template (or the global row).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Row {
    sims: u64,
    hits: Vec<u64>,
}

impl Row {
    fn new(len: usize) -> Self {
        Row {
            sims: 0,
            hits: vec![0; len],
        }
    }

    fn record(&mut self, vector: &CoverageVector) {
        self.sims += 1;
        for e in vector.iter_hits() {
            self.hits[e.index()] += 1;
        }
    }

    fn merge_counts(&mut self, sims: u64, hits: &[u64]) {
        self.sims += sims;
        for (dst, &src) in self.hits.iter_mut().zip(hits) {
            *dst += src;
        }
    }
}

/// Number of independent lock stripes in a [`CoverageRepository`].
///
/// Templates are assigned to stripes by `template.0 % STRIPE_COUNT`
/// (see [`CoverageRepository::stripe_of`]); each stripe guards its own
/// per-template rows *and* its own partial global row, so concurrent
/// chunk merges for templates on different stripes never contend.
pub const STRIPE_COUNT: usize = 8;

/// The coverage database maintained during a verification project.
///
/// Stores, for every test-template and every event, how many simulations ran
/// and how many of them hit the event — exactly the first-order statistics
/// that both the TAC tool and the AS-CDG objective estimates consume. The
/// repository is thread-safe: the batch simulation environment records
/// results from many worker threads.
///
/// Internally the store is striped ([`STRIPE_COUNT`] ways, keyed by
/// template id): a write touches exactly one stripe's lock, and the
/// global view is the sum of the stripes' partial global rows, read
/// under all stripe read-guards acquired in fixed order. Because
/// per-event counting is commutative, the striped layout is
/// byte-identical (snapshots included) to the historical single-lock
/// repository for any interleaving of writers.
///
/// # Examples
///
/// ```
/// use ascdg_coverage::{CoverageModel, CoverageRepository, CoverageVector, TemplateId};
///
/// let model = CoverageModel::from_names("u", ["a", "b"]).unwrap();
/// let repo = CoverageRepository::new(model.clone());
/// let mut v = CoverageVector::empty(2);
/// v.set(model.id("b").unwrap());
/// repo.record(TemplateId(3), &v);
/// let stats = repo.template_stats(TemplateId(3), model.id("b").unwrap());
/// assert_eq!((stats.hits, stats.sims), (1, 1));
/// ```
#[derive(Debug)]
pub struct CoverageRepository {
    model: CoverageModel,
    stripes: [Stripe; STRIPE_COUNT],
}

#[derive(Debug)]
struct Stripe {
    inner: RwLock<StripeInner>,
    /// Number of write-side operations (records + non-empty merges)
    /// absorbed by this stripe, for contention observability.
    merges: AtomicU64,
}

#[derive(Debug)]
struct StripeInner {
    /// This stripe's share of the global row; the true global row is the
    /// sum over all stripes.
    global: Row,
    per_template: HashMap<TemplateId, Row>,
}

impl Stripe {
    fn new(len: usize) -> Self {
        Stripe {
            inner: RwLock::new(StripeInner {
                global: Row::new(len),
                per_template: HashMap::new(),
            }),
            merges: AtomicU64::new(0),
        }
    }
}

impl CoverageRepository {
    /// Creates an empty repository for `model`.
    #[must_use]
    pub fn new(model: CoverageModel) -> Self {
        let len = model.len();
        CoverageRepository {
            model,
            stripes: std::array::from_fn(|_| Stripe::new(len)),
        }
    }

    /// The coverage model this repository accumulates against.
    #[must_use]
    pub fn model(&self) -> &CoverageModel {
        &self.model
    }

    /// The stripe index `template`'s rows live on.
    #[must_use]
    pub fn stripe_of(template: TemplateId) -> usize {
        template.0 as usize % STRIPE_COUNT
    }

    /// Write-side operations absorbed per stripe since construction
    /// (reset does not clear them) — the observability counter behind
    /// the striped-merge layout.
    #[must_use]
    pub fn stripe_merges(&self) -> [u64; STRIPE_COUNT] {
        std::array::from_fn(|i| self.stripes[i].merges.load(Ordering::Relaxed))
    }

    /// Read-guards for every stripe, acquired in fixed (index) order so
    /// aggregate reads see a consistent ordering discipline.
    fn read_all(&self) -> Vec<RwLockReadGuard<'_, StripeInner>> {
        self.stripes.iter().map(|s| s.inner.read()).collect()
    }

    /// Records the coverage vector of one simulation of a test-instance
    /// generated from `template`.
    ///
    /// # Panics
    ///
    /// Panics if the vector length does not match the model
    /// (use [`CoverageRepository::try_record`] for a fallible variant).
    pub fn record(&self, template: TemplateId, vector: &CoverageVector) {
        self.try_record(template, vector)
            .expect("coverage vector does not match repository model");
    }

    /// Fallible variant of [`CoverageRepository::record`].
    ///
    /// # Errors
    ///
    /// Returns [`CoverageError::VectorSizeMismatch`] when the vector was
    /// produced against a different model.
    pub fn try_record(
        &self,
        template: TemplateId,
        vector: &CoverageVector,
    ) -> Result<(), CoverageError> {
        if vector.len() != self.model.len() {
            return Err(CoverageError::VectorSizeMismatch {
                expected: self.model.len(),
                actual: vector.len(),
            });
        }
        let stripe = &self.stripes[Self::stripe_of(template)];
        let mut inner = stripe.inner.write();
        inner.global.record(vector);
        let len = self.model.len();
        inner
            .per_template
            .entry(template)
            .or_insert_with(|| Row::new(len))
            .record(vector);
        drop(inner);
        stripe.merges.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Merges a batch of pre-accumulated counters in one lock acquisition.
    ///
    /// `hits[e]` is the number of the `sims` simulations that hit event `e`.
    /// Because recording is commutative per-event counting, merging
    /// worker-local accumulators produces byte-identical repository state to
    /// calling [`CoverageRepository::try_record`] once per simulation — while
    /// taking the write lock O(batches) instead of O(simulations). This is
    /// the batch runner's hot-path recording API. The merge locks only
    /// `template`'s stripe, so chunk merges for templates on different
    /// stripes proceed in parallel.
    ///
    /// # Errors
    ///
    /// Returns [`CoverageError::VectorSizeMismatch`] when `hits` was
    /// accumulated against a different model width.
    pub fn merge_counts(
        &self,
        template: TemplateId,
        sims: u64,
        hits: &[u64],
    ) -> Result<(), CoverageError> {
        if hits.len() != self.model.len() {
            return Err(CoverageError::VectorSizeMismatch {
                expected: self.model.len(),
                actual: hits.len(),
            });
        }
        if sims == 0 && hits.iter().all(|&h| h == 0) {
            return Ok(());
        }
        let stripe = &self.stripes[Self::stripe_of(template)];
        let mut inner = stripe.inner.write();
        inner.global.merge_counts(sims, hits);
        let len = self.model.len();
        inner
            .per_template
            .entry(template)
            .or_insert_with(|| Row::new(len))
            .merge_counts(sims, hits);
        drop(inner);
        stripe.merges.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Total number of simulations recorded across all templates.
    #[must_use]
    pub fn total_simulations(&self) -> u64 {
        self.read_all().iter().map(|s| s.global.sims).sum()
    }

    /// Global statistics for one event.
    ///
    /// # Panics
    ///
    /// Panics if `event` is out of range for the model.
    #[must_use]
    pub fn global_stats(&self, event: EventId) -> HitStats {
        let guards = self.read_all();
        let mut stats = HitStats::default();
        for s in &guards {
            stats.merge(HitStats {
                hits: s.global.hits[event.index()],
                sims: s.global.sims,
            });
        }
        stats
    }

    /// Per-template statistics for one event. Templates never recorded
    /// return all-zero stats.
    ///
    /// # Panics
    ///
    /// Panics if `event` is out of range for the model.
    #[must_use]
    pub fn template_stats(&self, template: TemplateId, event: EventId) -> HitStats {
        let inner = self.stripes[Self::stripe_of(template)].inner.read();
        match inner.per_template.get(&template) {
            Some(row) => HitStats {
                hits: row.hits[event.index()],
                sims: row.sims,
            },
            None => HitStats::default(),
        }
    }

    /// Number of simulations recorded for one template.
    #[must_use]
    pub fn template_simulations(&self, template: TemplateId) -> u64 {
        self.stripes[Self::stripe_of(template)]
            .inner
            .read()
            .per_template
            .get(&template)
            .map_or(0, |r| r.sims)
    }

    /// Ids of all templates with at least one recorded simulation.
    #[must_use]
    pub fn templates(&self) -> Vec<TemplateId> {
        let guards = self.read_all();
        let mut t: Vec<_> = guards
            .iter()
            .flat_map(|s| s.per_template.keys().copied())
            .collect();
        t.sort();
        t
    }

    /// Global stats for every event, in id order.
    #[must_use]
    pub fn all_global_stats(&self) -> Vec<HitStats> {
        let guards = self.read_all();
        let sims: u64 = guards.iter().map(|s| s.global.sims).sum();
        let mut hits = vec![0u64; self.model.len()];
        for s in &guards {
            for (dst, &src) in hits.iter_mut().zip(&s.global.hits) {
                *dst += src;
            }
        }
        hits.into_iter()
            .map(|hits| HitStats { hits, sims })
            .collect()
    }

    /// Classifies every event under `policy` and counts the buckets
    /// (the paper's Fig. 5 view).
    #[must_use]
    pub fn status_counts(&self, policy: StatusPolicy) -> StatusCounts {
        policy.count(self.all_global_stats())
    }

    /// Events with zero global hits, in id order.
    #[must_use]
    pub fn uncovered_events(&self) -> Vec<EventId> {
        let guards = self.read_all();
        (0..self.model.len())
            .filter(|&i| guards.iter().all(|s| s.global.hits[i] == 0))
            .map(|i| EventId(i as u32))
            .collect()
    }

    /// Takes an immutable snapshot for reporting or serialization.
    ///
    /// The snapshot format is stripe-agnostic (summed global row,
    /// template rows sorted by id), byte-identical to the historical
    /// single-lock repository's output.
    #[must_use]
    pub fn snapshot(&self) -> RepoSnapshot {
        let guards = self.read_all();
        let mut global = Row::new(self.model.len());
        for s in &guards {
            global.merge_counts(s.global.sims, &s.global.hits);
        }
        let mut per_template: Vec<(TemplateId, u64, Vec<u64>)> = guards
            .iter()
            .flat_map(|s| {
                s.per_template
                    .iter()
                    .map(|(&t, row)| (t, row.sims, row.hits.clone()))
            })
            .collect();
        per_template.sort_by_key(|&(t, _, _)| t);
        RepoSnapshot {
            unit: self.model.unit().to_owned(),
            events: self.model.iter().map(|(_, n)| n.to_owned()).collect(),
            global_sims: global.sims,
            global_hits: global.hits,
            per_template,
        }
    }

    /// Clears all accumulated statistics (model is kept).
    pub fn reset(&self) {
        // Write-guards for every stripe held simultaneously (fixed
        // order), so no concurrent writer sees a half-reset repository.
        let mut guards: Vec<_> = self.stripes.iter().map(|s| s.inner.write()).collect();
        for inner in &mut guards {
            inner.global = Row::new(self.model.len());
            inner.per_template.clear();
        }
    }

    /// Rebuilds a repository from a snapshot (e.g. a regression run
    /// persisted to disk between CLI invocations).
    ///
    /// # Errors
    ///
    /// Returns [`CoverageError::VectorSizeMismatch`] when the snapshot's
    /// event count disagrees with `model`, and
    /// [`CoverageError::UnknownEvent`] when its event names do.
    pub fn from_snapshot(
        model: CoverageModel,
        snapshot: &RepoSnapshot,
    ) -> Result<Self, CoverageError> {
        if snapshot.events.len() != model.len() {
            return Err(CoverageError::VectorSizeMismatch {
                expected: model.len(),
                actual: snapshot.events.len(),
            });
        }
        for (id, name) in model.iter() {
            if snapshot.events[id.index()] != name {
                return Err(CoverageError::UnknownEvent(format!(
                    "snapshot event #{} is `{}`, model says `{}`",
                    id.index(),
                    snapshot.events[id.index()],
                    name
                )));
            }
        }
        let repo = CoverageRepository::new(model);
        // The restored global row lands wholly on stripe 0's partial row
        // (aggregate reads sum the stripes, so placement is invisible);
        // template rows go to their owning stripes so point lookups find
        // them.
        repo.stripes[0].inner.write().global = Row {
            sims: snapshot.global_sims,
            hits: snapshot.global_hits.clone(),
        };
        for (t, sims, hits) in &snapshot.per_template {
            repo.stripes[Self::stripe_of(*t)]
                .inner
                .write()
                .per_template
                .insert(
                    *t,
                    Row {
                        sims: *sims,
                        hits: hits.clone(),
                    },
                );
        }
        Ok(repo)
    }
}

/// A serializable point-in-time copy of a repository's counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepoSnapshot {
    /// Unit name of the model.
    pub unit: String,
    /// Event names, in id order.
    pub events: Vec<String>,
    /// Total simulations recorded.
    pub global_sims: u64,
    /// Global per-event hit counts, in id order.
    pub global_hits: Vec<u64>,
    /// `(template, sims, per-event hits)` rows, sorted by template id.
    pub per_template: Vec<(TemplateId, u64, Vec<u64>)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CoverageModel {
        CoverageModel::from_names("u", ["a", "b", "c"]).unwrap()
    }

    fn vec_hitting(model: &CoverageModel, names: &[&str]) -> CoverageVector {
        let mut v = CoverageVector::empty(model.len());
        for n in names {
            v.set(model.id(n).unwrap());
        }
        v
    }

    #[test]
    fn record_and_query() {
        let m = model();
        let repo = CoverageRepository::new(m.clone());
        repo.record(TemplateId(0), &vec_hitting(&m, &["a"]));
        repo.record(TemplateId(0), &vec_hitting(&m, &["a", "b"]));
        repo.record(TemplateId(1), &vec_hitting(&m, &["c"]));

        assert_eq!(repo.total_simulations(), 3);
        let a = m.id("a").unwrap();
        assert_eq!(repo.global_stats(a), HitStats { hits: 2, sims: 3 });
        assert_eq!(
            repo.template_stats(TemplateId(0), a),
            HitStats { hits: 2, sims: 2 }
        );
        assert_eq!(
            repo.template_stats(TemplateId(1), a),
            HitStats { hits: 0, sims: 1 }
        );
        assert_eq!(repo.template_stats(TemplateId(9), a), HitStats::default());
        assert_eq!(repo.templates(), vec![TemplateId(0), TemplateId(1)]);
        assert_eq!(repo.template_simulations(TemplateId(0)), 2);
    }

    #[test]
    fn merge_counts_equals_per_sim_record() {
        let m = model();
        let by_record = CoverageRepository::new(m.clone());
        let by_merge = CoverageRepository::new(m.clone());

        // Simulations for two templates, recorded one at a time on one repo
        // and as pre-accumulated shards on the other.
        let sims: Vec<(TemplateId, CoverageVector)> = vec![
            (TemplateId(0), vec_hitting(&m, &["a"])),
            (TemplateId(0), vec_hitting(&m, &["a", "b"])),
            (TemplateId(0), vec_hitting(&m, &[])),
            (TemplateId(1), vec_hitting(&m, &["c"])),
            (TemplateId(1), vec_hitting(&m, &["a", "c"])),
        ];
        for (t, v) in &sims {
            by_record.record(*t, v);
        }
        for template in [TemplateId(0), TemplateId(1)] {
            let mut counts = vec![0u64; m.len()];
            let mut n = 0u64;
            for (t, v) in sims.iter().filter(|(t, _)| *t == template) {
                assert_eq!(*t, template);
                n += 1;
                for e in v.iter_hits() {
                    counts[e.index()] += 1;
                }
            }
            by_merge.merge_counts(template, n, &counts).unwrap();
        }
        assert_eq!(by_record.snapshot(), by_merge.snapshot());
    }

    #[test]
    fn merge_counts_rejects_wrong_width_and_skips_empty() {
        let m = model();
        let repo = CoverageRepository::new(m);
        assert!(matches!(
            repo.merge_counts(TemplateId(0), 1, &[0, 0]),
            Err(CoverageError::VectorSizeMismatch {
                expected: 3,
                actual: 2
            })
        ));
        // An all-zero merge must not materialize a per-template row.
        repo.merge_counts(TemplateId(7), 0, &[0, 0, 0]).unwrap();
        assert!(repo.templates().is_empty());
    }

    #[test]
    fn size_mismatch_rejected() {
        let repo = CoverageRepository::new(model());
        let bad = CoverageVector::empty(2);
        assert!(matches!(
            repo.try_record(TemplateId(0), &bad),
            Err(CoverageError::VectorSizeMismatch {
                expected: 3,
                actual: 2
            })
        ));
    }

    #[test]
    fn uncovered_and_status() {
        let m = model();
        let repo = CoverageRepository::new(m.clone());
        for _ in 0..200 {
            repo.record(TemplateId(0), &vec_hitting(&m, &["a"]));
        }
        assert_eq!(
            repo.uncovered_events(),
            vec![m.id("b").unwrap(), m.id("c").unwrap()]
        );
        let counts = repo.status_counts(StatusPolicy::default());
        assert_eq!(counts.well_hit, 1);
        assert_eq!(counts.never_hit, 2);
    }

    #[test]
    fn snapshot_roundtrip() {
        let m = model();
        let repo = CoverageRepository::new(m.clone());
        repo.record(TemplateId(2), &vec_hitting(&m, &["b"]));
        let snap = repo.snapshot();
        assert_eq!(snap.global_sims, 1);
        assert_eq!(snap.global_hits, vec![0, 1, 0]);
        assert_eq!(snap.per_template.len(), 1);
        assert_eq!(snap.per_template[0].0, TemplateId(2));
    }

    #[test]
    fn reset_clears_counters() {
        let m = model();
        let repo = CoverageRepository::new(m.clone());
        repo.record(TemplateId(0), &vec_hitting(&m, &["a"]));
        repo.reset();
        assert_eq!(repo.total_simulations(), 0);
        assert!(repo.templates().is_empty());
    }

    #[test]
    fn concurrent_recording() {
        let m = model();
        let repo = std::sync::Arc::new(CoverageRepository::new(m.clone()));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let repo = repo.clone();
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..250 {
                        let mut v = CoverageVector::empty(m.len());
                        v.set(EventId(t % 3));
                        repo.record(TemplateId(t), &v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(repo.total_simulations(), 1000);
        let total_hits: u64 = repo.all_global_stats().iter().map(|s| s.hits).sum();
        assert_eq!(total_hits, 1000);
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let m = model();
        let repo = CoverageRepository::new(m.clone());
        repo.record(TemplateId(0), &vec_hitting(&m, &["a", "c"]));
        repo.record(TemplateId(2), &vec_hitting(&m, &["b"]));
        let snap = repo.snapshot();
        let restored = CoverageRepository::from_snapshot(m.clone(), &snap).unwrap();
        assert_eq!(restored.snapshot(), snap);
        assert_eq!(restored.total_simulations(), 2);
        assert_eq!(
            restored.template_stats(TemplateId(2), m.id("b").unwrap()),
            HitStats { hits: 1, sims: 1 }
        );
    }

    #[test]
    fn snapshot_restore_rejects_mismatched_model() {
        let m = model();
        let repo = CoverageRepository::new(m.clone());
        repo.record(TemplateId(0), &vec_hitting(&m, &["a"]));
        let snap = repo.snapshot();
        let other = CoverageModel::from_names("u", ["a", "b"]).unwrap();
        assert!(matches!(
            CoverageRepository::from_snapshot(other, &snap),
            Err(CoverageError::VectorSizeMismatch { .. })
        ));
        let renamed = CoverageModel::from_names("u", ["a", "x", "c"]).unwrap();
        assert!(matches!(
            CoverageRepository::from_snapshot(renamed, &snap),
            Err(CoverageError::UnknownEvent(_))
        ));
    }

    #[test]
    fn wilson_interval_properties() {
        // Contains the point estimate and tightens with more samples.
        for &(hits, sims) in &[(1u64, 10u64), (50, 100), (999, 1000)] {
            let s = HitStats { hits, sims };
            let (lo, hi) = s.wilson_interval(1.96);
            assert!(lo <= s.rate() && s.rate() <= hi, "{hits}/{sims}");
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        }
        let narrow = HitStats {
            hits: 500,
            sims: 10_000,
        }
        .wilson_interval(1.96);
        let wide = HitStats { hits: 5, sims: 100 }.wilson_interval(1.96);
        assert!(narrow.1 - narrow.0 < wide.1 - wide.0);
        // Degenerate cases.
        assert_eq!(HitStats::default().wilson_interval(1.96), (0.0, 1.0));
        let all = HitStats { hits: 10, sims: 10 }.wilson_interval(1.96);
        assert!(all.1 <= 1.0 && all.0 < 1.0);
    }

    #[test]
    fn striped_merge_counts_equals_monolithic_reference() {
        // Drive merges across templates landing on every stripe (and two
        // templates colliding on one stripe) and check the striped
        // repository against a monolithic single-map reference.
        let m = model();
        let repo = CoverageRepository::new(m.clone());
        let mut ref_global = Row::new(m.len());
        let mut ref_rows: HashMap<TemplateId, Row> = HashMap::new();
        let templates: Vec<TemplateId> = (0..STRIPE_COUNT as u32 + 2).map(TemplateId).collect();
        for (i, &t) in templates.iter().enumerate() {
            let mut counts = vec![0u64; m.len()];
            counts[i % m.len()] = (i as u64 + 1) * 3;
            counts[(i + 1) % m.len()] = 1;
            let sims = (i as u64 + 1) * 5;
            repo.merge_counts(t, sims, &counts).unwrap();
            ref_global.merge_counts(sims, &counts);
            ref_rows
                .entry(t)
                .or_insert_with(|| Row::new(m.len()))
                .merge_counts(sims, &counts);
        }
        assert_eq!(repo.total_simulations(), ref_global.sims);
        let snap = repo.snapshot();
        assert_eq!(snap.global_hits, ref_global.hits);
        assert_eq!(snap.per_template.len(), templates.len());
        for (t, sims, hits) in &snap.per_template {
            let reference = &ref_rows[t];
            assert_eq!(
                (*sims, hits.as_slice()),
                (reference.sims, &reference.hits[..])
            );
        }
        // Templates 0..9 cover stripes 0..7 plus two collisions on 0/1.
        let merges = repo.stripe_merges();
        assert_eq!(merges.iter().sum::<u64>(), templates.len() as u64);
        assert_eq!(merges[0], 2);
        assert_eq!(merges[1], 2);
        assert!(merges[2..].iter().all(|&c| c == 1));
        // And the striped snapshot round-trips through restore.
        let restored = CoverageRepository::from_snapshot(m, &snap).unwrap();
        assert_eq!(restored.snapshot(), snap);
    }

    #[test]
    fn stripe_of_partitions_all_templates() {
        for t in 0..64u32 {
            let s = CoverageRepository::stripe_of(TemplateId(t));
            assert_eq!(s, t as usize % STRIPE_COUNT);
            assert!(s < STRIPE_COUNT);
        }
    }

    #[test]
    fn hit_stats_merge() {
        let mut a = HitStats { hits: 1, sims: 10 };
        a.merge(HitStats { hits: 2, sims: 5 });
        assert_eq!(a, HitStats { hits: 3, sims: 15 });
        assert_eq!(HitStats::default().rate(), 0.0);
    }
}
