//! Coverage infrastructure for AS-CDG.
//!
//! This crate provides the coverage substrate that every other part of the
//! AS-CDG system builds on:
//!
//! * [`CoverageModel`] — the declaration of a unit's coverage events,
//!   optionally with *cross-product* structure ([`CrossProduct`]) or a
//!   *family* grouping (e.g. `byp_reqs01..byp_reqs16`).
//! * [`CoverageVector`] — the boolean per-event outcome of simulating a
//!   single test-instance (a compact bitset).
//! * [`CoverageRepository`] — the accumulating store of coverage results,
//!   globally and per test-template, as maintained by a verification team's
//!   coverage database.
//! * [`EventStatus`] / [`StatusPolicy`] — the status convention used in the
//!   paper's evaluation (never-hit / lightly-hit / well-hit, where lightly
//!   hit means fewer than 100 hits *or* a hit rate below 1%).
//!
//! # Examples
//!
//! ```
//! use ascdg_coverage::{CoverageModel, CoverageRepository, CoverageVector, TemplateId};
//!
//! let model = CoverageModel::from_names("demo", ["ev_a", "ev_b"]).unwrap();
//! let repo = CoverageRepository::new(model.clone());
//!
//! let mut vec = CoverageVector::empty(model.len());
//! vec.set(model.id("ev_a").unwrap());
//! repo.record(TemplateId(0), &vec);
//!
//! assert_eq!(repo.global_stats(model.id("ev_a").unwrap()).hits, 1);
//! assert_eq!(repo.total_simulations(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::perf)]

mod cross;
mod error;
mod event;
mod family;
mod model;
mod plane;
mod repo;
mod status;
mod vector;

pub use cross::{CrossEvent, CrossProduct, Feature};
pub use error::CoverageError;
pub use event::{EventId, TemplateId};
pub use family::{family_index, family_of, EventFamily};
pub use model::CoverageModel;
pub use plane::{CoveragePlane, CoverageSink, PlaneLane, PLANE_LANES};
pub use repo::{CoverageRepository, HitStats, RepoSnapshot, STRIPE_COUNT};
pub use status::{EventStatus, StatusCounts, StatusPolicy};
pub use vector::{CoverageVector, HitIter};
