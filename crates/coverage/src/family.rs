//! Event families: groups of related events with a natural order.
//!
//! The paper's evaluation targets *families* of events — e.g. the
//! buffer-fill family `byp_reqs01..byp_reqs16` or the CRC burst-length
//! family `crc_004..crc_096`. A family has a natural order (usually the
//! numeric suffix) along which hit probability decays, which is exactly the
//! "descent gradient from easily hit events to hard-to-hit events" the
//! approximated target exploits.

use serde::{Deserialize, Serialize};

use crate::{CoverageModel, EventId};

/// Splits an event name into its alphabetic stem and trailing numeric index.
///
/// Returns `None` when the name has no trailing digits.
///
/// # Examples
///
/// ```
/// use ascdg_coverage::family_index;
/// assert_eq!(family_index("byp_reqs07"), Some(("byp_reqs", 7)));
/// assert_eq!(family_index("crc_064"), Some(("crc_", 64)));
/// assert_eq!(family_index("reset"), None);
/// ```
#[must_use]
pub fn family_index(name: &str) -> Option<(&str, u64)> {
    let digits_start = name
        .char_indices()
        .rev()
        .take_while(|(_, c)| c.is_ascii_digit())
        .last()
        .map(|(i, _)| i)?;
    let (stem, digits) = name.split_at(digits_start);
    if stem.is_empty() {
        return None;
    }
    digits.parse().ok().map(|n| (stem, n))
}

/// Returns the stem naming the family `name` belongs to, if any.
///
/// # Examples
///
/// ```
/// use ascdg_coverage::family_of;
/// assert_eq!(family_of("crc_032"), Some("crc_"));
/// assert_eq!(family_of("done"), None);
/// ```
#[must_use]
pub fn family_of(name: &str) -> Option<&str> {
    family_index(name).map(|(stem, _)| stem)
}

/// An ordered family of coverage events sharing a name stem.
///
/// Members are sorted by their numeric suffix; the order is the family's
/// natural difficulty gradient (filling more of a buffer, longer bursts...).
///
/// # Examples
///
/// ```
/// use ascdg_coverage::{CoverageModel, EventFamily};
///
/// let model = CoverageModel::from_names("u", ["fill2", "fill1", "other", "fill3"]).unwrap();
/// let fams = EventFamily::discover(&model);
/// assert_eq!(fams.len(), 1);
/// assert_eq!(fams[0].stem(), "fill");
/// assert_eq!(fams[0].indices(), [1, 2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventFamily {
    stem: String,
    /// (numeric suffix, event id) sorted by suffix.
    members: Vec<(u64, EventId)>,
}

impl EventFamily {
    /// Discovers all families (stems with at least two members) in a model.
    #[must_use]
    pub fn discover(model: &CoverageModel) -> Vec<EventFamily> {
        let mut by_stem: Vec<(String, Vec<(u64, EventId)>)> = Vec::new();
        for (id, name) in model.iter() {
            if let Some((stem, n)) = family_index(name) {
                match by_stem.iter_mut().find(|(s, _)| s == stem) {
                    Some((_, v)) => v.push((n, id)),
                    None => by_stem.push((stem.to_owned(), vec![(n, id)])),
                }
            }
        }
        by_stem
            .into_iter()
            .filter(|(_, v)| v.len() >= 2)
            .map(|(stem, mut members)| {
                members.sort_by_key(|&(n, _)| n);
                EventFamily { stem, members }
            })
            .collect()
    }

    /// Finds the family containing `event`, if any.
    #[must_use]
    pub fn containing(model: &CoverageModel, event: EventId) -> Option<EventFamily> {
        EventFamily::discover(model)
            .into_iter()
            .find(|f| f.members.iter().any(|&(_, e)| e == event))
    }

    /// The shared name stem.
    #[must_use]
    pub fn stem(&self) -> &str {
        &self.stem
    }

    /// Event ids in suffix order.
    #[must_use]
    pub fn events(&self) -> Vec<EventId> {
        self.members.iter().map(|&(_, e)| e).collect()
    }

    /// Numeric suffixes in sorted order.
    #[must_use]
    pub fn indices(&self) -> Vec<u64> {
        self.members.iter().map(|&(n, _)| n).collect()
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` for a family with no members (never produced by
    /// [`EventFamily::discover`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Position of `event` within the family's order, if it is a member.
    #[must_use]
    pub fn position(&self, event: EventId) -> Option<usize> {
        self.members.iter().position(|&(_, e)| e == event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_index_parsing() {
        assert_eq!(family_index("crc_004"), Some(("crc_", 4)));
        assert_eq!(family_index("byp_reqs16"), Some(("byp_reqs", 16)));
        assert_eq!(family_index("a1b2"), Some(("a1b", 2)));
        assert_eq!(family_index("123"), None);
        assert_eq!(family_index(""), None);
        assert_eq!(family_index("x"), None);
    }

    #[test]
    fn discover_sorts_by_suffix() {
        let model = CoverageModel::from_names(
            "u",
            ["crc_016", "crc_004", "byp_reqs02", "byp_reqs01", "misc"],
        )
        .unwrap();
        let fams = EventFamily::discover(&model);
        assert_eq!(fams.len(), 2);
        let crc = fams.iter().find(|f| f.stem() == "crc_").unwrap();
        assert_eq!(crc.indices(), [4, 16]);
        assert_eq!(
            crc.events(),
            vec![model.id("crc_004").unwrap(), model.id("crc_016").unwrap()]
        );
    }

    #[test]
    fn singletons_are_not_families() {
        let model = CoverageModel::from_names("u", ["only1", "other"]).unwrap();
        assert!(EventFamily::discover(&model).is_empty());
    }

    #[test]
    fn containing_and_position() {
        let model = CoverageModel::from_names("u", ["f1", "f2", "f3"]).unwrap();
        let e2 = model.id("f2").unwrap();
        let fam = EventFamily::containing(&model, e2).unwrap();
        assert_eq!(fam.position(e2), Some(1));
        assert_eq!(fam.position(EventId(99)), None);
        assert_eq!(fam.len(), 3);
        assert!(!fam.is_empty());
    }
}
