//! Cross-product coverage models.
//!
//! A *cross-product* coverage model enumerates one event per combination of a
//! set of named features, such as the paper's IFU model:
//! `entry(0-7) x thread(0-3) x sector(0-3) x branch(0-1)` — 256 events.
//! The structure is what makes *neighbor discovery* possible: two events that
//! differ in a single feature value are Hamming-distance-1 neighbors.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{CoverageError, EventId};

/// One dimension of a cross-product model: a name and its legal values.
///
/// # Examples
///
/// ```
/// use ascdg_coverage::Feature;
/// let f = Feature::numeric("thread", 4);
/// assert_eq!(f.values(), ["0", "1", "2", "3"]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Feature {
    name: String,
    values: Vec<String>,
}

impl Feature {
    /// Creates a feature with explicit value labels.
    pub fn new(
        name: impl Into<String>,
        values: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        Feature {
            name: name.into(),
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// Creates a feature whose values are `0..count` rendered as decimal.
    pub fn numeric(name: impl Into<String>, count: usize) -> Self {
        Feature {
            name: name.into(),
            values: (0..count).map(|v| v.to_string()).collect(),
        }
    }

    /// The feature's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The feature's value labels.
    #[must_use]
    pub fn values(&self) -> &[String] {
        &self.values
    }

    /// Number of legal values.
    #[must_use]
    pub fn cardinality(&self) -> usize {
        self.values.len()
    }
}

/// A full cross-product space over an ordered list of [`Feature`]s.
///
/// Events are laid out in row-major order with the *first* feature varying
/// slowest, which makes event names sort naturally
/// (`entry0_thread0_sector0_branch0`, `entry0_thread0_sector0_branch1`, ...).
///
/// # Examples
///
/// ```
/// use ascdg_coverage::{CrossProduct, Feature};
///
/// let cp = CrossProduct::new([
///     Feature::numeric("entry", 8),
///     Feature::numeric("thread", 4),
///     Feature::numeric("sector", 4),
///     Feature::numeric("branch", 2),
/// ]).unwrap();
/// assert_eq!(cp.len(), 256);
/// let e = cp.event_id(&[7, 3, 3, 1]).unwrap();
/// assert_eq!(cp.event_name(e), "entry7_thread3_sector3_branch1");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrossProduct {
    features: Vec<Feature>,
    /// Row-major strides, aligned with `features`.
    strides: Vec<usize>,
    len: usize,
}

impl CrossProduct {
    /// Builds a cross-product space from an ordered feature list.
    ///
    /// # Errors
    ///
    /// Returns [`CoverageError::EmptyFeature`] if any feature has no values
    /// and [`CoverageError::EmptyModel`] if no features are given.
    pub fn new(features: impl IntoIterator<Item = Feature>) -> Result<Self, CoverageError> {
        let features: Vec<Feature> = features.into_iter().collect();
        if features.is_empty() {
            return Err(CoverageError::EmptyModel);
        }
        for f in &features {
            if f.cardinality() == 0 {
                return Err(CoverageError::EmptyFeature(f.name.clone()));
            }
        }
        let mut strides = vec![0usize; features.len()];
        let mut acc = 1usize;
        for (i, f) in features.iter().enumerate().rev() {
            strides[i] = acc;
            acc *= f.cardinality();
        }
        Ok(CrossProduct {
            features,
            strides,
            len: acc,
        })
    }

    /// Total number of events in the space.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the space contains no events (never true for a
    /// successfully constructed value).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The ordered feature list.
    #[must_use]
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// Maps a coordinate tuple (one value index per feature) to an event id.
    ///
    /// # Errors
    ///
    /// Returns [`CoverageError::UnknownEvent`] if the tuple has the wrong
    /// arity or a coordinate is out of range.
    pub fn event_id(&self, coords: &[usize]) -> Result<EventId, CoverageError> {
        if coords.len() != self.features.len() {
            return Err(CoverageError::UnknownEvent(format!(
                "coordinate arity {} != {} features",
                coords.len(),
                self.features.len()
            )));
        }
        let mut idx = 0usize;
        for ((&c, f), &s) in coords.iter().zip(&self.features).zip(&self.strides) {
            if c >= f.cardinality() {
                return Err(CoverageError::UnknownEvent(format!(
                    "feature `{}` value index {c} out of range (cardinality {})",
                    f.name,
                    f.cardinality()
                )));
            }
            idx += c * s;
        }
        Ok(EventId(idx as u32))
    }

    /// Decodes an event id back into its coordinate tuple.
    ///
    /// # Panics
    ///
    /// Panics if `event` is out of range for this space.
    #[must_use]
    pub fn coords(&self, event: EventId) -> Vec<usize> {
        let mut idx = event.index();
        assert!(idx < self.len, "event {event} out of range");
        self.strides
            .iter()
            .zip(&self.features)
            .map(|(&s, f)| {
                let c = idx / s;
                idx %= s;
                debug_assert!(c < f.cardinality());
                c
            })
            .collect()
    }

    /// Canonical name of an event: `feat0valA_feat1valB_...`.
    ///
    /// # Panics
    ///
    /// Panics if `event` is out of range for this space.
    #[must_use]
    pub fn event_name(&self, event: EventId) -> String {
        let coords = self.coords(event);
        let parts: Vec<String> = coords
            .iter()
            .zip(&self.features)
            .map(|(&c, f)| format!("{}{}", f.name, f.values[c]))
            .collect();
        parts.join("_")
    }

    /// All event names, in id order.
    #[must_use]
    pub fn event_names(&self) -> Vec<String> {
        (0..self.len)
            .map(|i| self.event_name(EventId(i as u32)))
            .collect()
    }

    /// Ids of all events whose coordinates differ from `event` in exactly
    /// `distance` features (Hamming-distance neighbors).
    ///
    /// Distance 1 yields the direct structural neighbors used by the paper's
    /// cross-product neighbor discovery.
    #[must_use]
    pub fn hamming_neighbors(&self, event: EventId, distance: usize) -> Vec<EventId> {
        let base = self.coords(event);
        let mut out = Vec::new();
        for i in 0..self.len {
            let e = EventId(i as u32);
            if e == event {
                continue;
            }
            let c = self.coords(e);
            let d = c.iter().zip(&base).filter(|(a, b)| a != b).count();
            if d == distance {
                out.push(e);
            }
        }
        out
    }

    /// Iterates over all events whose coordinate for feature `feature_idx`
    /// equals `value_idx` (a "slice" of the cross product).
    ///
    /// # Panics
    ///
    /// Panics if `feature_idx` or `value_idx` are out of range.
    #[must_use]
    pub fn slice(&self, feature_idx: usize, value_idx: usize) -> Vec<EventId> {
        assert!(feature_idx < self.features.len());
        assert!(value_idx < self.features[feature_idx].cardinality());
        (0..self.len)
            .map(|i| EventId(i as u32))
            .filter(|&e| self.coords(e)[feature_idx] == value_idx)
            .collect()
    }
}

/// A decoded cross-product event: id plus coordinates, for display.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrossEvent {
    /// The event's id in the owning space.
    pub id: EventId,
    /// One value index per feature.
    pub coords: Vec<usize>,
}

impl fmt::Display for CrossEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{:?}", self.id, self.coords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ifu() -> CrossProduct {
        CrossProduct::new([
            Feature::numeric("entry", 8),
            Feature::numeric("thread", 4),
            Feature::numeric("sector", 4),
            Feature::numeric("branch", 2),
        ])
        .unwrap()
    }

    #[test]
    fn size_and_roundtrip() {
        let cp = ifu();
        assert_eq!(cp.len(), 256);
        for i in 0..256u32 {
            let e = EventId(i);
            let c = cp.coords(e);
            assert_eq!(cp.event_id(&c).unwrap(), e);
        }
    }

    #[test]
    fn names_are_canonical() {
        let cp = ifu();
        assert_eq!(
            cp.event_name(cp.event_id(&[0, 0, 0, 0]).unwrap()),
            "entry0_thread0_sector0_branch0"
        );
        assert_eq!(
            cp.event_name(cp.event_id(&[7, 3, 3, 1]).unwrap()),
            "entry7_thread3_sector3_branch1"
        );
        assert_eq!(cp.event_names().len(), 256);
    }

    #[test]
    fn hamming_distance_one_count() {
        let cp = ifu();
        let e = cp.event_id(&[3, 2, 1, 0]).unwrap();
        // (8-1) + (4-1) + (4-1) + (2-1) = 14 neighbors at distance 1.
        assert_eq!(cp.hamming_neighbors(e, 1).len(), 14);
    }

    #[test]
    fn slice_extracts_plane() {
        let cp = ifu();
        let entry7 = cp.slice(0, 7);
        assert_eq!(entry7.len(), 32);
        for e in entry7 {
            assert_eq!(cp.coords(e)[0], 7);
        }
    }

    #[test]
    fn bad_coords_rejected() {
        let cp = ifu();
        assert!(cp.event_id(&[0, 0]).is_err());
        assert!(cp.event_id(&[8, 0, 0, 0]).is_err());
    }

    #[test]
    fn empty_feature_rejected() {
        let err = CrossProduct::new([Feature::new("x", Vec::<String>::new())]).unwrap_err();
        assert_eq!(err, CoverageError::EmptyFeature("x".into()));
        assert!(CrossProduct::new(std::iter::empty::<Feature>()).is_err());
    }

    #[test]
    fn labeled_features() {
        let cp = CrossProduct::new([
            Feature::new("op", ["load", "store"]),
            Feature::numeric("way", 2),
        ])
        .unwrap();
        assert_eq!(cp.len(), 4);
        assert_eq!(cp.event_name(cp.event_id(&[1, 0]).unwrap()), "opstore_way0");
    }
}
