//! Event-status classification (the IBM color convention from the paper).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::repo::HitStats;

/// The coverage status of a single event under a [`StatusPolicy`].
///
/// The paper's figures color events green (well hit), orange (lightly hit)
/// and red (never hit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EventStatus {
    /// Zero hits recorded.
    NeverHit,
    /// Hit, but below the policy's count or rate thresholds.
    LightlyHit,
    /// At or above both thresholds.
    WellHit,
}

impl fmt::Display for EventStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EventStatus::NeverHit => "never-hit",
            EventStatus::LightlyHit => "lightly-hit",
            EventStatus::WellHit => "well-hit",
        })
    }
}

/// Thresholds that separate lightly-hit from well-hit events.
///
/// The default follows IBM's convention as stated in the paper: an event is
/// lightly hit when its hit count is below 100 **or** its hit rate is below
/// 1%.
///
/// # Examples
///
/// ```
/// use ascdg_coverage::{EventStatus, HitStats, StatusPolicy};
///
/// let policy = StatusPolicy::default();
/// assert_eq!(policy.classify(HitStats { hits: 0, sims: 1000 }), EventStatus::NeverHit);
/// assert_eq!(policy.classify(HitStats { hits: 12, sims: 1000 }), EventStatus::LightlyHit);
/// assert_eq!(policy.classify(HitStats { hits: 500, sims: 1000 }), EventStatus::WellHit);
/// // 150 hits but only 0.15% rate: still lightly hit.
/// assert_eq!(policy.classify(HitStats { hits: 150, sims: 100_000 }), EventStatus::LightlyHit);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StatusPolicy {
    /// Minimum hit count for an event to be considered well hit.
    pub min_hits: u64,
    /// Minimum hit rate (fraction of simulations) for well-hit status.
    pub min_rate: f64,
}

impl Default for StatusPolicy {
    fn default() -> Self {
        StatusPolicy {
            min_hits: 100,
            min_rate: 0.01,
        }
    }
}

impl StatusPolicy {
    /// Classifies an event's accumulated statistics.
    #[must_use]
    pub fn classify(&self, stats: HitStats) -> EventStatus {
        if stats.hits == 0 {
            EventStatus::NeverHit
        } else if stats.hits < self.min_hits || stats.rate() < self.min_rate {
            EventStatus::LightlyHit
        } else {
            EventStatus::WellHit
        }
    }

    /// Counts the statuses of a set of events, as shown in the paper's
    /// Fig. 5 bar chart.
    #[must_use]
    pub fn count(&self, stats: impl IntoIterator<Item = HitStats>) -> StatusCounts {
        let mut counts = StatusCounts::default();
        for s in stats {
            match self.classify(s) {
                EventStatus::NeverHit => counts.never_hit += 1,
                EventStatus::LightlyHit => counts.lightly_hit += 1,
                EventStatus::WellHit => counts.well_hit += 1,
            }
        }
        counts
    }
}

/// Counts of events in each status bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatusCounts {
    /// Events with zero hits.
    pub never_hit: usize,
    /// Events hit below the policy thresholds.
    pub lightly_hit: usize,
    /// Events at or above the thresholds.
    pub well_hit: usize,
}

impl StatusCounts {
    /// Total number of events counted.
    #[must_use]
    pub fn total(&self) -> usize {
        self.never_hit + self.lightly_hit + self.well_hit
    }
}

impl fmt::Display for StatusCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "never={} lightly={} well={}",
            self.never_hit, self.lightly_hit, self.well_hit
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hs(hits: u64, sims: u64) -> HitStats {
        HitStats { hits, sims }
    }

    #[test]
    fn boundary_cases() {
        let p = StatusPolicy::default();
        assert_eq!(p.classify(hs(99, 100)), EventStatus::LightlyHit);
        assert_eq!(p.classify(hs(100, 100)), EventStatus::WellHit);
        // Exactly 1% rate with >=100 hits: well hit.
        assert_eq!(p.classify(hs(100, 10_000)), EventStatus::WellHit);
        // Just below 1%.
        assert_eq!(p.classify(hs(100, 10_001)), EventStatus::LightlyHit);
    }

    #[test]
    fn zero_sims_is_never_hit() {
        let p = StatusPolicy::default();
        assert_eq!(p.classify(hs(0, 0)), EventStatus::NeverHit);
    }

    #[test]
    fn counting() {
        let p = StatusPolicy::default();
        let c = p.count([hs(0, 100), hs(5, 100), hs(100, 100), hs(0, 100)]);
        assert_eq!(
            c,
            StatusCounts {
                never_hit: 2,
                lightly_hit: 1,
                well_hit: 1
            }
        );
        assert_eq!(c.total(), 4);
        assert_eq!(c.to_string(), "never=2 lightly=1 well=1");
    }

    #[test]
    fn custom_policy() {
        let p = StatusPolicy {
            min_hits: 10,
            min_rate: 0.5,
        };
        assert_eq!(p.classify(hs(20, 100)), EventStatus::LightlyHit);
        assert_eq!(p.classify(hs(60, 100)), EventStatus::WellHit);
    }

    #[test]
    fn status_order() {
        assert!(EventStatus::NeverHit < EventStatus::LightlyHit);
        assert!(EventStatus::LightlyHit < EventStatus::WellHit);
    }
}
