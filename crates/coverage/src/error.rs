//! Error type for coverage-model construction and queries.

use std::fmt;

/// Errors produced by coverage-model construction and repository queries.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoverageError {
    /// Two events in one model share a name.
    DuplicateEvent(String),
    /// A queried event name does not exist in the model.
    UnknownEvent(String),
    /// A coverage vector's length does not match the model size.
    VectorSizeMismatch {
        /// Number of events declared by the model.
        expected: usize,
        /// Length of the offending vector.
        actual: usize,
    },
    /// A cross-product feature was declared with no values.
    EmptyFeature(String),
    /// A model was declared with no events.
    EmptyModel,
}

impl fmt::Display for CoverageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverageError::DuplicateEvent(name) => {
                write!(f, "duplicate coverage event name `{name}`")
            }
            CoverageError::UnknownEvent(name) => {
                write!(f, "unknown coverage event `{name}`")
            }
            CoverageError::VectorSizeMismatch { expected, actual } => write!(
                f,
                "coverage vector has {actual} events but the model declares {expected}"
            ),
            CoverageError::EmptyFeature(name) => {
                write!(f, "cross-product feature `{name}` has no values")
            }
            CoverageError::EmptyModel => write!(f, "coverage model declares no events"),
        }
    }
}

impl std::error::Error for CoverageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoverageError::VectorSizeMismatch {
            expected: 4,
            actual: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains('4') && msg.contains('2'));
        assert!(CoverageError::UnknownEvent("x".into())
            .to_string()
            .contains("`x`"));
    }

    #[test]
    fn implements_error_trait() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CoverageError::EmptyModel);
    }
}
