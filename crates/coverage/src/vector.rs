//! Compact per-simulation coverage outcome.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::EventId;

/// The boolean per-event outcome of simulating one test-instance.
///
/// The paper's hit statistics are *per-simulation* indicators: a simulation
/// either hit an event or did not, regardless of how many times the event
/// fired within that simulation. `CoverageVector` therefore stores one bit
/// per event of the owning [`crate::CoverageModel`].
///
/// # Examples
///
/// ```
/// use ascdg_coverage::{CoverageVector, EventId};
///
/// let mut v = CoverageVector::empty(70);
/// v.set(EventId(0));
/// v.set(EventId(69));
/// assert!(v.get(EventId(0)) && v.get(EventId(69)) && !v.get(EventId(1)));
/// assert_eq!(v.count_hits(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CoverageVector {
    len: usize,
    words: Vec<u64>,
}

impl CoverageVector {
    /// Creates an all-zero vector covering `len` events.
    #[must_use]
    pub fn empty(len: usize) -> Self {
        CoverageVector {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Number of events tracked by this vector.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector tracks zero events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Marks `event` as hit.
    ///
    /// # Panics
    ///
    /// Panics if `event` is out of range for this vector.
    pub fn set(&mut self, event: EventId) {
        let i = event.index();
        assert!(
            i < self.len,
            "event {event} out of range (len {})",
            self.len
        );
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clears the hit bit for `event`.
    ///
    /// # Panics
    ///
    /// Panics if `event` is out of range for this vector.
    pub fn clear(&mut self, event: EventId) {
        let i = event.index();
        assert!(
            i < self.len,
            "event {event} out of range (len {})",
            self.len
        );
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Returns whether `event` was hit.
    ///
    /// # Panics
    ///
    /// Panics if `event` is out of range for this vector.
    #[must_use]
    pub fn get(&self, event: EventId) -> bool {
        let i = event.index();
        assert!(
            i < self.len,
            "event {event} out of range (len {})",
            self.len
        );
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of events hit in this simulation.
    #[must_use]
    pub fn count_hits(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the ids of all hit events, in increasing order.
    pub fn iter_hits(&self) -> impl Iterator<Item = EventId> + '_ {
        (0..self.len)
            .filter(move |&i| self.words[i / 64] & (1 << (i % 64)) != 0)
            .map(|i| EventId(i as u32))
    }

    /// Merges another vector into this one (bitwise or).
    ///
    /// # Panics
    ///
    /// Panics if the two vectors track different numbers of events.
    pub fn union_with(&mut self, other: &CoverageVector) {
        assert_eq!(self.len, other.len, "coverage vector length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }
}

impl fmt::Debug for CoverageVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CoverageVector({}/{} hit)", self.count_hits(), self.len)
    }
}

impl FromIterator<EventId> for CoverageVector {
    /// Builds a vector sized to the largest id seen.
    fn from_iter<T: IntoIterator<Item = EventId>>(iter: T) -> Self {
        let ids: Vec<EventId> = iter.into_iter().collect();
        let len = ids.iter().map(|e| e.index() + 1).max().unwrap_or(0);
        let mut v = CoverageVector::empty(len);
        for id in ids {
            v.set(id);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut v = CoverageVector::empty(130);
        for i in [0u32, 63, 64, 65, 129] {
            v.set(EventId(i));
            assert!(v.get(EventId(i)));
        }
        assert_eq!(v.count_hits(), 5);
        v.clear(EventId(64));
        assert!(!v.get(EventId(64)));
        assert_eq!(v.count_hits(), 4);
    }

    #[test]
    fn iter_hits_in_order() {
        let mut v = CoverageVector::empty(100);
        v.set(EventId(70));
        v.set(EventId(3));
        let hits: Vec<_> = v.iter_hits().collect();
        assert_eq!(hits, vec![EventId(3), EventId(70)]);
    }

    #[test]
    fn union() {
        let mut a = CoverageVector::empty(10);
        let mut b = CoverageVector::empty(10);
        a.set(EventId(1));
        b.set(EventId(8));
        a.union_with(&b);
        assert!(a.get(EventId(1)) && a.get(EventId(8)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let v = CoverageVector::empty(4);
        let _ = v.get(EventId(4));
    }

    #[test]
    fn from_iterator() {
        let v: CoverageVector = [EventId(2), EventId(5)].into_iter().collect();
        assert_eq!(v.len(), 6);
        assert!(v.get(EventId(5)) && !v.get(EventId(4)));
    }

    #[test]
    fn empty_vector() {
        let v = CoverageVector::empty(0);
        assert!(v.is_empty());
        assert_eq!(v.count_hits(), 0);
        assert_eq!(v.iter_hits().count(), 0);
    }

    #[test]
    fn debug_format() {
        let mut v = CoverageVector::empty(8);
        v.set(EventId(0));
        assert_eq!(format!("{v:?}"), "CoverageVector(1/8 hit)");
    }
}
