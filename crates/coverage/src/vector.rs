//! Compact per-simulation coverage outcome.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::EventId;

/// The boolean per-event outcome of simulating one test-instance.
///
/// The paper's hit statistics are *per-simulation* indicators: a simulation
/// either hit an event or did not, regardless of how many times the event
/// fired within that simulation. `CoverageVector` therefore stores one bit
/// per event of the owning [`crate::CoverageModel`].
///
/// # Examples
///
/// ```
/// use ascdg_coverage::{CoverageVector, EventId};
///
/// let mut v = CoverageVector::empty(70);
/// v.set(EventId(0));
/// v.set(EventId(69));
/// assert!(v.get(EventId(0)) && v.get(EventId(69)) && !v.get(EventId(1)));
/// assert_eq!(v.count_hits(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CoverageVector {
    len: usize,
    words: Vec<u64>,
}

impl CoverageVector {
    /// Creates an all-zero vector covering `len` events.
    #[must_use]
    pub fn empty(len: usize) -> Self {
        CoverageVector {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Number of events tracked by this vector.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector tracks zero events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Marks `event` as hit.
    ///
    /// # Panics
    ///
    /// Panics if `event` is out of range for this vector.
    pub fn set(&mut self, event: EventId) {
        let i = event.index();
        assert!(
            i < self.len,
            "event {event} out of range (len {})",
            self.len
        );
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clears the hit bit for `event`.
    ///
    /// # Panics
    ///
    /// Panics if `event` is out of range for this vector.
    pub fn clear(&mut self, event: EventId) {
        let i = event.index();
        assert!(
            i < self.len,
            "event {event} out of range (len {})",
            self.len
        );
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Returns whether `event` was hit.
    ///
    /// # Panics
    ///
    /// Panics if `event` is out of range for this vector.
    #[must_use]
    pub fn get(&self, event: EventId) -> bool {
        let i = event.index();
        assert!(
            i < self.len,
            "event {event} out of range (len {})",
            self.len
        );
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of events hit in this simulation.
    #[must_use]
    pub fn count_hits(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the ids of all hit events, in increasing order.
    ///
    /// Word-at-a-time: zero words are skipped in one comparison and set bits
    /// are extracted with `trailing_zeros`, so sparse vectors (the common
    /// case — most simulations hit a handful of events) cost far less than a
    /// per-bit scan.
    pub fn iter_hits(&self) -> HitIter<'_> {
        HitIter {
            words: &self.words,
            next_word: 0,
            base: 0,
            current: 0,
        }
    }

    /// Adds this simulation's hits into a per-event count accumulator
    /// (`counts[e] += 1` for every hit event `e`).
    ///
    /// This is the shard-accumulation primitive of the batch hot path:
    /// workers fold vectors into a plain `Vec<u64>` and merge into the
    /// repository once per chunk.
    ///
    /// # Panics
    ///
    /// Panics if `counts` does not have exactly one slot per event.
    pub fn accumulate_into(&self, counts: &mut [u64]) {
        assert_eq!(
            counts.len(),
            self.len,
            "accumulator width does not match coverage vector"
        );
        for e in self.iter_hits() {
            counts[e.index()] += 1;
        }
    }

    /// The raw 64-bit backing words, least-significant bit = lowest event
    /// id. `set`/`clear` guarantee no bit beyond [`CoverageVector::len`]
    /// is ever set, so callers may popcount or scatter whole words
    /// without masking the final partial word. This is the word-wise
    /// primitive behind [`CoverageVector::union_with`] and the bit-plane
    /// bridge (`CoveragePlane::record_vector`).
    #[must_use]
    pub fn fold_words(&self) -> &[u64] {
        &self.words
    }

    /// Clears every hit bit in place, keeping the event count.
    ///
    /// This is the arena-reuse primitive of the batched simulation path: a
    /// recycled vector is reset instead of reallocated, and afterwards is
    /// indistinguishable from [`CoverageVector::empty`] of the same length.
    pub fn reset(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Merges another vector into this one (bitwise or).
    ///
    /// # Panics
    ///
    /// Panics if the two vectors track different numbers of events.
    pub fn union_with(&mut self, other: &CoverageVector) {
        assert_eq!(self.len, other.len, "coverage vector length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }
}

/// Iterator over the hit events of a [`CoverageVector`], in increasing
/// id order (see [`CoverageVector::iter_hits`]).
///
/// `set`/`clear` guarantee no bit beyond `len` is ever set, so the iterator
/// never needs to mask the final partial word.
pub struct HitIter<'a> {
    words: &'a [u64],
    next_word: usize,
    base: u32,
    current: u64,
}

impl Iterator for HitIter<'_> {
    type Item = EventId;

    fn next(&mut self) -> Option<EventId> {
        while self.current == 0 {
            let w = *self.words.get(self.next_word)?;
            self.base = self.next_word as u32 * 64;
            self.next_word += 1;
            self.current = w;
        }
        let bit = self.current.trailing_zeros();
        self.current &= self.current - 1;
        Some(EventId(self.base + bit))
    }
}

impl fmt::Debug for CoverageVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CoverageVector({}/{} hit)", self.count_hits(), self.len)
    }
}

impl FromIterator<EventId> for CoverageVector {
    /// Builds a vector sized to the largest id seen.
    fn from_iter<T: IntoIterator<Item = EventId>>(iter: T) -> Self {
        let ids: Vec<EventId> = iter.into_iter().collect();
        let len = ids.iter().map(|e| e.index() + 1).max().unwrap_or(0);
        let mut v = CoverageVector::empty(len);
        for id in ids {
            v.set(id);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut v = CoverageVector::empty(130);
        for i in [0u32, 63, 64, 65, 129] {
            v.set(EventId(i));
            assert!(v.get(EventId(i)));
        }
        assert_eq!(v.count_hits(), 5);
        v.clear(EventId(64));
        assert!(!v.get(EventId(64)));
        assert_eq!(v.count_hits(), 4);
    }

    #[test]
    fn iter_hits_in_order() {
        let mut v = CoverageVector::empty(100);
        v.set(EventId(70));
        v.set(EventId(3));
        let hits: Vec<_> = v.iter_hits().collect();
        assert_eq!(hits, vec![EventId(3), EventId(70)]);
    }

    #[test]
    fn union() {
        let mut a = CoverageVector::empty(10);
        let mut b = CoverageVector::empty(10);
        a.set(EventId(1));
        b.set(EventId(8));
        a.union_with(&b);
        assert!(a.get(EventId(1)) && a.get(EventId(8)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let v = CoverageVector::empty(4);
        let _ = v.get(EventId(4));
    }

    #[test]
    fn reset_equals_fresh_empty() {
        let mut v = CoverageVector::empty(130);
        for i in [0u32, 63, 64, 129] {
            v.set(EventId(i));
        }
        v.reset();
        assert_eq!(v, CoverageVector::empty(130));
        assert_eq!(v.count_hits(), 0);
        v.set(EventId(129));
        assert!(v.get(EventId(129)));
    }

    #[test]
    fn from_iterator() {
        let v: CoverageVector = [EventId(2), EventId(5)].into_iter().collect();
        assert_eq!(v.len(), 6);
        assert!(v.get(EventId(5)) && !v.get(EventId(4)));
    }

    #[test]
    fn empty_vector() {
        let v = CoverageVector::empty(0);
        assert!(v.is_empty());
        assert_eq!(v.count_hits(), 0);
        assert_eq!(v.iter_hits().count(), 0);
    }

    #[test]
    fn debug_format() {
        let mut v = CoverageVector::empty(8);
        v.set(EventId(0));
        assert_eq!(format!("{v:?}"), "CoverageVector(1/8 hit)");
    }

    #[test]
    fn accumulate_into_counts_each_hit_once() {
        let mut v = CoverageVector::empty(65);
        v.set(EventId(0));
        v.set(EventId(64));
        let mut counts = vec![0u64; 65];
        v.accumulate_into(&mut counts);
        v.accumulate_into(&mut counts);
        assert_eq!(counts[0], 2);
        assert_eq!(counts[64], 2);
        assert_eq!(counts.iter().sum::<u64>(), 4);
    }

    #[test]
    #[should_panic(expected = "accumulator width")]
    fn accumulate_into_rejects_wrong_width() {
        let v = CoverageVector::empty(10);
        v.accumulate_into(&mut [0u64; 9]);
    }

    mod word_boundary_props {
        use super::*;
        use proptest::prelude::*;
        use std::collections::BTreeSet;

        /// A strategy over (len, hit-index set) pairs straddling the 64-bit
        /// word boundary, where the word-level iteration is easiest to get
        /// wrong.
        fn len_and_hits() -> impl Strategy<Value = (usize, BTreeSet<u32>)> {
            prop_oneof![Just(63usize), Just(64), Just(65)].prop_flat_map(|len| {
                (
                    Just(len),
                    proptest::collection::btree_set(0..len as u32, 0..len + 1),
                )
            })
        }

        proptest! {
            /// `set` then `iter_hits` round-trips the exact id set, in order.
            #[test]
            fn set_iter_round_trip((len, hits) in len_and_hits()) {
                let mut v = CoverageVector::empty(len);
                for &i in &hits {
                    v.set(EventId(i));
                }
                let iterated: Vec<u32> = v.iter_hits().map(|e| e.0).collect();
                let expected: Vec<u32> = hits.iter().copied().collect();
                prop_assert_eq!(iterated, expected);
            }

            /// `count_hits` agrees with the number of distinct set bits and
            /// with the iterator's length.
            #[test]
            fn count_matches_set_bits((len, hits) in len_and_hits()) {
                let mut v = CoverageVector::empty(len);
                for &i in &hits {
                    v.set(EventId(i));
                    v.set(EventId(i)); // double-set must be idempotent
                }
                prop_assert_eq!(v.count_hits(), hits.len());
                prop_assert_eq!(v.iter_hits().count(), hits.len());
            }

            /// `get` sees exactly the bits that were set, across the whole
            /// index range including the final partial word.
            #[test]
            fn get_matches_membership((len, hits) in len_and_hits()) {
                let mut v = CoverageVector::empty(len);
                for &i in &hits {
                    v.set(EventId(i));
                }
                for i in 0..len as u32 {
                    prop_assert_eq!(v.get(EventId(i)), hits.contains(&i));
                }
            }

            /// `accumulate_into` counts exactly the hit events.
            #[test]
            fn accumulate_matches_iter((len, hits) in len_and_hits()) {
                let mut v = CoverageVector::empty(len);
                for &i in &hits {
                    v.set(EventId(i));
                }
                let mut counts = vec![0u64; len];
                v.accumulate_into(&mut counts);
                for (i, &count) in counts.iter().enumerate() {
                    prop_assert_eq!(count, u64::from(hits.contains(&(i as u32))));
                }
            }
        }
    }
}
