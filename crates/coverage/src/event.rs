//! Identifier newtypes shared across the coverage subsystem.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense index of a coverage event within a [`crate::CoverageModel`].
///
/// Event ids are only meaningful relative to the model that produced them;
/// mixing ids across models is a logic error that the repository guards
/// against by checking vector lengths.
///
/// # Examples
///
/// ```
/// use ascdg_coverage::EventId;
/// let e = EventId(3);
/// assert_eq!(e.index(), 3);
/// assert_eq!(format!("{e}"), "event#3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EventId(pub u32);

impl EventId {
    /// Returns the id as a `usize` index into model-sized arrays.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event#{}", self.0)
    }
}

impl From<u32> for EventId {
    fn from(value: u32) -> Self {
        EventId(value)
    }
}

/// Dense index of a test-template within a template library.
///
/// The coverage repository keys per-template statistics by `TemplateId` so it
/// stays decoupled from the template crate.
///
/// # Examples
///
/// ```
/// use ascdg_coverage::TemplateId;
/// assert_eq!(TemplateId(7).index(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TemplateId(pub u32);

impl TemplateId {
    /// Returns the id as a `usize` index into library-sized arrays.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TemplateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "template#{}", self.0)
    }
}

impl From<u32> for TemplateId {
    fn from(value: u32) -> Self {
        TemplateId(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_id_roundtrip() {
        let e = EventId::from(9u32);
        assert_eq!(e.index(), 9);
        assert_eq!(e, EventId(9));
        assert!(EventId(1) < EventId(2));
    }

    #[test]
    fn template_id_display() {
        assert_eq!(TemplateId(4).to_string(), "template#4");
        assert_eq!(EventId(4).to_string(), "event#4");
    }

    #[test]
    fn ids_hash_and_order() {
        use std::collections::BTreeSet;
        let set: BTreeSet<_> = [EventId(3), EventId(1), EventId(3)].into_iter().collect();
        assert_eq!(set.len(), 2);
        assert_eq!(set.iter().next(), Some(&EventId(1)));
    }
}
