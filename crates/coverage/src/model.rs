//! Coverage model: the declaration of a unit's coverage events.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

use crate::{CoverageError, CrossProduct, EventId};

/// The set of coverage events declared by one unit's verification plan.
///
/// A model maps stable event names to dense [`EventId`]s and may carry the
/// [`CrossProduct`] structure it was generated from, which neighbor
/// discovery exploits. Models are cheap to clone (`Arc` internals) because
/// repositories, environments and reports all hold one.
///
/// # Examples
///
/// ```
/// use ascdg_coverage::CoverageModel;
///
/// let m = CoverageModel::from_names("l3", ["byp_reqs01", "byp_reqs02"]).unwrap();
/// assert_eq!(m.len(), 2);
/// assert_eq!(m.name(m.id("byp_reqs02").unwrap()), "byp_reqs02");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(from = "ModelRepr", into = "ModelRepr")]
pub struct CoverageModel {
    unit: Arc<str>,
    names: Arc<[String]>,
    index: Arc<HashMap<String, EventId>>,
    cross: Option<Arc<CrossProduct>>,
}

/// Serialized form of [`CoverageModel`]; the name index is rebuilt on load.
#[derive(Serialize, Deserialize)]
struct ModelRepr {
    unit: String,
    names: Vec<String>,
    cross: Option<CrossProduct>,
}

impl From<CoverageModel> for ModelRepr {
    fn from(m: CoverageModel) -> Self {
        ModelRepr {
            unit: m.unit.to_string(),
            names: m.names.to_vec(),
            cross: m.cross.map(|c| (*c).clone()),
        }
    }
}

impl From<ModelRepr> for CoverageModel {
    fn from(r: ModelRepr) -> Self {
        // Names were validated when the model was first built, so rebuilding
        // cannot fail for data we serialized ourselves; fall back to a
        // best-effort dedup for hand-edited files.
        CoverageModel::build(&r.unit, r.names, r.cross)
            .unwrap_or_else(|e| panic!("invalid serialized coverage model: {e}"))
    }
}

impl PartialEq for CoverageModel {
    fn eq(&self, other: &Self) -> bool {
        self.unit == other.unit && self.names == other.names && self.cross == other.cross
    }
}

impl Eq for CoverageModel {}

impl CoverageModel {
    fn build(
        unit: &str,
        names: Vec<String>,
        cross: Option<CrossProduct>,
    ) -> Result<Self, CoverageError> {
        if names.is_empty() {
            return Err(CoverageError::EmptyModel);
        }
        let mut index = HashMap::with_capacity(names.len());
        for (i, n) in names.iter().enumerate() {
            if index.insert(n.clone(), EventId(i as u32)).is_some() {
                return Err(CoverageError::DuplicateEvent(n.clone()));
            }
        }
        Ok(CoverageModel {
            unit: Arc::from(unit),
            names: names.into(),
            index: Arc::new(index),
            cross: cross.map(Arc::new),
        })
    }

    /// Builds a flat model from a list of event names.
    ///
    /// # Errors
    ///
    /// Returns [`CoverageError::DuplicateEvent`] on repeated names and
    /// [`CoverageError::EmptyModel`] when `names` is empty.
    pub fn from_names(
        unit: &str,
        names: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<Self, CoverageError> {
        Self::build(unit, names.into_iter().map(Into::into).collect(), None)
    }

    /// Builds a model that enumerates every event of a cross-product space,
    /// using the space's canonical names.
    ///
    /// # Errors
    ///
    /// Propagates name construction failures (cannot occur for canonical
    /// cross-product names, which are unique by construction).
    pub fn from_cross_product(unit: &str, cross: CrossProduct) -> Result<Self, CoverageError> {
        Self::build(unit, cross.event_names(), Some(cross))
    }

    /// The unit this model belongs to.
    #[must_use]
    pub fn unit(&self) -> &str {
        &self.unit
    }

    /// Number of declared events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if the model declares no events (never true for a
    /// successfully constructed model).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Looks up an event id by name.
    ///
    /// # Errors
    ///
    /// Returns [`CoverageError::UnknownEvent`] for names not in the model.
    pub fn id(&self, name: &str) -> Result<EventId, CoverageError> {
        self.index
            .get(name)
            .copied()
            .ok_or_else(|| CoverageError::UnknownEvent(name.to_owned()))
    }

    /// The name of an event.
    ///
    /// # Panics
    ///
    /// Panics if `event` is out of range for this model.
    #[must_use]
    pub fn name(&self, event: EventId) -> &str {
        &self.names[event.index()]
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (EventId, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (EventId(i as u32), n.as_str()))
    }

    /// All event ids, in order.
    pub fn event_ids(&self) -> impl Iterator<Item = EventId> + '_ {
        (0..self.len()).map(|i| EventId(i as u32))
    }

    /// The cross-product structure, if this model was built from one.
    #[must_use]
    pub fn cross_product(&self) -> Option<&CrossProduct> {
        self.cross.as_deref()
    }

    /// Looks up several names at once.
    ///
    /// # Errors
    ///
    /// Returns the first [`CoverageError::UnknownEvent`] encountered.
    pub fn ids<'a>(
        &self,
        names: impl IntoIterator<Item = &'a str>,
    ) -> Result<Vec<EventId>, CoverageError> {
        names.into_iter().map(|n| self.id(n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Feature;

    #[test]
    fn flat_model_lookup() {
        let m = CoverageModel::from_names("io", ["a", "b", "c"]).unwrap();
        assert_eq!(m.unit(), "io");
        assert_eq!(m.id("b").unwrap(), EventId(1));
        assert_eq!(m.name(EventId(2)), "c");
        assert!(m.id("zzz").is_err());
        assert_eq!(m.event_ids().count(), 3);
    }

    #[test]
    fn duplicate_rejected() {
        let err = CoverageModel::from_names("io", ["a", "a"]).unwrap_err();
        assert_eq!(err, CoverageError::DuplicateEvent("a".into()));
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            CoverageModel::from_names("io", Vec::<String>::new()).unwrap_err(),
            CoverageError::EmptyModel
        );
    }

    #[test]
    fn cross_product_model() {
        let cp = CrossProduct::new([Feature::numeric("t", 2), Feature::numeric("s", 3)]).unwrap();
        let m = CoverageModel::from_cross_product("ifu", cp).unwrap();
        assert_eq!(m.len(), 6);
        assert!(m.cross_product().is_some());
        let id = m.id("t1_s2").unwrap();
        assert_eq!(m.cross_product().unwrap().coords(id), vec![1, 2]);
    }

    #[test]
    fn batch_id_lookup() {
        let m = CoverageModel::from_names("u", ["x", "y"]).unwrap();
        assert_eq!(m.ids(["y", "x"]).unwrap(), vec![EventId(1), EventId(0)]);
        assert!(m.ids(["x", "nope"]).is_err());
    }

    #[test]
    fn clone_is_shallow_and_equal() {
        let m = CoverageModel::from_names("u", ["x"]).unwrap();
        let m2 = m.clone();
        assert_eq!(m, m2);
    }
}
