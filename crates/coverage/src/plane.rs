//! Transposed bit-plane coverage accumulation for batched simulation.

use crate::{CoverageVector, EventId};

/// Maximum number of simulations (lanes) one plane block can hold.
pub const PLANE_LANES: usize = 64;

/// A write-only sink for the hit events of one simulation.
///
/// Unit cycle models record coverage exclusively through this trait, so
/// the same model code serves both per-simulation recording (into a
/// [`CoverageVector`]) and batched bit-plane recording (into a
/// [`PlaneLane`]) without duplication. Recording is idempotent: hitting
/// an event twice within one simulation is the same as hitting it once.
pub trait CoverageSink {
    /// Marks `event` as hit by the current simulation.
    fn hit(&mut self, event: EventId);
}

impl CoverageSink for CoverageVector {
    fn hit(&mut self, event: EventId) {
        self.set(event);
    }
}

/// A transposed coverage bit-plane: one `u64` word per event, one bit
/// lane per simulation of a kernel block (column-major relative to
/// [`CoverageVector`]'s row-major layout).
///
/// Where the per-sim path allocates one vector per simulation and folds
/// each into a count accumulator bit by bit, a plane records a whole
/// block of up to [`PLANE_LANES`] simulations into one flat `Vec<u64>`
/// (`word(event) |= 1 << lane`) and folds the block with a single
/// popcount sweep per event — zero per-simulation allocation. Because
/// every simulation owns a distinct lane bit, the fold's per-event
/// popcount equals the number of simulations that hit the event, making
/// the counts byte-identical to per-sim
/// [`CoverageVector::accumulate_into`] accumulation.
///
/// # Examples
///
/// ```
/// use ascdg_coverage::{CoveragePlane, CoverageSink, EventId};
///
/// let mut plane = CoveragePlane::new();
/// plane.begin(3, 2);
/// plane.lane(0).hit(EventId(1));
/// plane.lane(1).hit(EventId(1));
/// plane.lane(1).hit(EventId(2));
/// let mut counts = vec![0u64; 3];
/// plane.fold_into(&mut counts);
/// assert_eq!(counts, vec![0, 2, 1]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoveragePlane {
    events: usize,
    lanes: usize,
    words: Vec<u64>,
}

impl CoveragePlane {
    /// An empty plane; call [`CoveragePlane::begin`] before recording.
    #[must_use]
    pub fn new() -> Self {
        CoveragePlane::default()
    }

    /// Starts a new block of `lanes` simulations over `events` events,
    /// zeroing every word. Reuses the existing allocation when the event
    /// width matches — the arena-reuse primitive of the batch hot path.
    ///
    /// # Panics
    ///
    /// Panics when `lanes` exceeds [`PLANE_LANES`] (callers dispatch
    /// kernel blocks of at most 64 simulations).
    pub fn begin(&mut self, events: usize, lanes: usize) {
        assert!(
            lanes <= PLANE_LANES,
            "plane block of {lanes} lanes exceeds {PLANE_LANES}"
        );
        self.events = events;
        self.lanes = lanes;
        self.words.clear();
        self.words.resize(events, 0);
    }

    /// Number of events per lane.
    #[must_use]
    pub fn events(&self) -> usize {
        self.events
    }

    /// Number of simulations in the current block.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The recording view of simulation `lane`.
    ///
    /// # Panics
    ///
    /// Panics when `lane` is outside the current block.
    #[must_use]
    pub fn lane(&mut self, lane: usize) -> PlaneLane<'_> {
        assert!(lane < self.lanes, "lane {lane} out of {}", self.lanes);
        PlaneLane {
            words: &mut self.words,
            bit: 1 << lane,
        }
    }

    /// Whether simulation `lane` hit `event`.
    ///
    /// # Panics
    ///
    /// Panics when `lane` or `event` is out of range.
    #[must_use]
    pub fn get(&self, lane: usize, event: EventId) -> bool {
        assert!(lane < self.lanes, "lane {lane} out of {}", self.lanes);
        self.words[event.index()] & (1 << lane) != 0
    }

    /// Folds the block into a per-event count accumulator
    /// (`counts[e] += <number of lanes that hit e>`): one popcount per
    /// event, byte-identical to accumulating each lane's
    /// [`CoverageVector`] individually.
    ///
    /// # Panics
    ///
    /// Panics when `counts` does not have exactly one slot per event.
    pub fn fold_into(&self, counts: &mut [u64]) {
        assert_eq!(
            counts.len(),
            self.events,
            "accumulator width does not match coverage plane"
        );
        for (dst, &w) in counts.iter_mut().zip(&self.words) {
            *dst += u64::from(w.count_ones());
        }
    }

    /// Folds only the lanes in `lo..hi` into a per-event count
    /// accumulator (`counts[e] += <number of lanes in lo..hi that hit
    /// e>`): one masked popcount per event. When several segments share
    /// one fused plane block, each segment folds exactly its own lane
    /// range, byte-identical to recording that segment into a private
    /// plane and folding it whole.
    ///
    /// # Panics
    ///
    /// Panics when `counts` does not have exactly one slot per event or
    /// `lo..hi` is not a subrange of the current block.
    pub fn fold_lanes_into(&self, lo: usize, hi: usize, counts: &mut [u64]) {
        assert_eq!(
            counts.len(),
            self.events,
            "accumulator width does not match coverage plane"
        );
        assert!(
            lo <= hi && hi <= self.lanes,
            "lane range {lo}..{hi} out of {}",
            self.lanes
        );
        let width = hi - lo;
        let mask = if width == PLANE_LANES {
            u64::MAX
        } else {
            ((1u64 << width) - 1) << lo
        };
        for (dst, &w) in counts.iter_mut().zip(&self.words) {
            *dst += u64::from((w & mask).count_ones());
        }
    }

    /// Scatters one simulation's per-sim vector into `lane` — the bridge
    /// for environments that only implement the per-sim batch entry.
    /// Word-at-a-time over [`CoverageVector::fold_words`], so all-zero
    /// words (the common sparse case) cost one comparison.
    ///
    /// # Panics
    ///
    /// Panics when `lane` is outside the block or the vector width does
    /// not match the plane.
    pub fn record_vector(&mut self, lane: usize, vector: &CoverageVector) {
        assert!(lane < self.lanes, "lane {lane} out of {}", self.lanes);
        assert_eq!(
            vector.len(),
            self.events,
            "coverage vector width does not match plane"
        );
        let bit = 1u64 << lane;
        for (wi, &w) in vector.fold_words().iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.words[wi * 64 + b] |= bit;
            }
        }
    }

    /// Extracts simulation `lane` back into a (zeroed) per-sim vector,
    /// for the rare consumer that needs row-major form.
    ///
    /// # Panics
    ///
    /// Panics when `lane` is outside the block or the vector width does
    /// not match the plane.
    pub fn extract_into(&self, lane: usize, out: &mut CoverageVector) {
        assert!(lane < self.lanes, "lane {lane} out of {}", self.lanes);
        assert_eq!(
            out.len(),
            self.events,
            "coverage vector width does not match plane"
        );
        let bit = 1u64 << lane;
        for (e, &w) in self.words.iter().enumerate() {
            if w & bit != 0 {
                out.set(EventId(e as u32));
            }
        }
    }
}

/// The [`CoverageSink`] view of one plane lane (one simulation's column).
#[derive(Debug)]
pub struct PlaneLane<'a> {
    words: &'a mut [u64],
    bit: u64,
}

impl CoverageSink for PlaneLane<'_> {
    fn hit(&mut self, event: EventId) {
        self.words[event.index()] |= self.bit;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_recording_folds_to_per_sim_counts() {
        let mut plane = CoveragePlane::new();
        plane.begin(70, 3);
        // Reference: the same hits recorded per-sim.
        let mut vectors = vec![CoverageVector::empty(70); 3];
        let hits: [&[u32]; 3] = [&[0, 69], &[0], &[1, 1, 69]];
        for (lane, ids) in hits.iter().enumerate() {
            for &i in *ids {
                plane.lane(lane).hit(EventId(i));
                vectors[lane].set(EventId(i));
            }
        }
        let mut folded = vec![0u64; 70];
        plane.fold_into(&mut folded);
        let mut reference = vec![0u64; 70];
        for v in &vectors {
            v.accumulate_into(&mut reference);
        }
        assert_eq!(folded, reference);
        assert!(plane.get(0, EventId(69)) && !plane.get(1, EventId(69)));
    }

    #[test]
    fn begin_resets_a_reused_plane() {
        let mut plane = CoveragePlane::new();
        plane.begin(8, 4);
        plane.lane(3).hit(EventId(5));
        plane.begin(8, 2);
        let mut counts = vec![0u64; 8];
        plane.fold_into(&mut counts);
        assert_eq!(counts, vec![0; 8], "warm plane leaked prior hits");
        assert_eq!((plane.events(), plane.lanes()), (8, 2));
    }

    #[test]
    fn record_vector_matches_lane_recording() {
        let mut v = CoverageVector::empty(130);
        for i in [0u32, 63, 64, 65, 129] {
            v.set(EventId(i));
        }
        let mut scattered = CoveragePlane::new();
        scattered.begin(130, 2);
        scattered.record_vector(1, &v);
        let mut direct = CoveragePlane::new();
        direct.begin(130, 2);
        for e in v.iter_hits() {
            direct.lane(1).hit(e);
        }
        assert_eq!(scattered, direct);
        let mut round = CoverageVector::empty(130);
        scattered.extract_into(1, &mut round);
        assert_eq!(round, v);
        let mut other = CoverageVector::empty(130);
        scattered.extract_into(0, &mut other);
        assert_eq!(other.count_hits(), 0);
    }

    #[test]
    fn fold_accumulates_across_blocks() {
        let mut plane = CoveragePlane::new();
        let mut counts = vec![0u64; 3];
        for block in 0..2 {
            plane.begin(3, 64);
            for lane in 0..64 {
                plane.lane(lane).hit(EventId(block));
            }
            plane.fold_into(&mut counts);
        }
        assert_eq!(counts, vec![64, 64, 0]);
    }

    #[test]
    fn lane_range_fold_matches_per_lane_accumulation() {
        let mut plane = CoveragePlane::new();
        plane.begin(5, 64);
        // Three "segments" of lanes with distinct hit patterns.
        for lane in 0..64 {
            plane.lane(lane).hit(EventId(lane as u32 % 5));
            if lane % 2 == 0 {
                plane.lane(lane).hit(EventId(4));
            }
        }
        for (lo, hi) in [(0usize, 10usize), (10, 37), (37, 64), (0, 64), (5, 5)] {
            let mut ranged = vec![0u64; 5];
            plane.fold_lanes_into(lo, hi, &mut ranged);
            let mut reference = vec![0u64; 5];
            let mut v = CoverageVector::empty(5);
            for lane in lo..hi {
                v.reset();
                plane.extract_into(lane, &mut v);
                v.accumulate_into(&mut reference);
            }
            assert_eq!(ranged, reference, "range {lo}..{hi} diverged");
        }
        // Segment folds partition the whole-block fold.
        let mut whole = vec![0u64; 5];
        plane.fold_into(&mut whole);
        let mut pieces = vec![0u64; 5];
        plane.fold_lanes_into(0, 20, &mut pieces);
        plane.fold_lanes_into(20, 64, &mut pieces);
        assert_eq!(pieces, whole);
    }

    #[test]
    #[should_panic(expected = "lane range")]
    fn lane_range_fold_rejects_out_of_block_range() {
        let mut plane = CoveragePlane::new();
        plane.begin(4, 8);
        plane.fold_lanes_into(2, 9, &mut [0u64; 4]);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn more_than_64_lanes_panics() {
        CoveragePlane::new().begin(4, 65);
    }

    #[test]
    #[should_panic(expected = "accumulator width")]
    fn fold_rejects_wrong_width() {
        let mut plane = CoveragePlane::new();
        plane.begin(4, 1);
        plane.fold_into(&mut [0u64; 3]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_block_lane_panics() {
        let mut plane = CoveragePlane::new();
        plane.begin(4, 2);
        let _ = plane.lane(2);
    }
}
