//! The biased random stimuli generator of AS-CDG.
//!
//! A verification environment turns a test-template into *test-instances*:
//! concrete stimulus programs obtained by sampling every random decision
//! from the template's (or the environment default's) parameter
//! distributions. This crate provides:
//!
//! * [`ParamSampler`] — draws values from resolved weight/range parameters
//!   with a deterministic, seedable RNG (the source of the paper's
//!   *dynamic noise*: same template, different seeds, different coverage);
//! * [`instance_seed`] — the canonical seed derivation for instance `i` of a
//!   named template, so batch runs are reproducible and order-independent;
//! * [`SeedStream`] — the same derivation with the template-name hash
//!   precomputed, so batch hot loops derive per-simulation seeds with pure
//!   integer mixing (byte-identical to [`instance_seed`]);
//! * typed stimulus programs ([`IoProgram`], [`MemProgram`],
//!   [`FetchProgram`]) — the interface between the generator and the
//!   simulated units in `ascdg-duv`.
//!
//! # Examples
//!
//! ```
//! use ascdg_stimgen::{instance_seed, ParamSampler};
//! use ascdg_template::{ParamDef, ParamRegistry, TestTemplate};
//!
//! let mut reg = ParamRegistry::new();
//! reg.define(ParamDef::weights("Op", [("load", 80), ("store", 20)])?)?;
//! reg.define(ParamDef::range("Delay", 0, 8)?)?;
//!
//! let template = TestTemplate::builder("t").build();
//! let resolved = reg.resolve(&template)?;
//! let mut sampler = ParamSampler::new(&resolved, instance_seed(1, "t", 0));
//! let op = sampler.sample_choice("Op")?;
//! assert!(op == "load" || op == "store");
//! let d = sampler.sample_int("Delay")?;
//! assert!((0..8).contains(&d));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::redundant_clone, clippy::large_enum_variant)]

mod error;
mod sampler;
mod seed;
mod stimulus;

pub use error::StimGenError;
pub use sampler::ParamSampler;
pub use seed::{instance_seed, mix_seed, name_hash, SeedStream};
pub use stimulus::{FetchOp, FetchProgram, IoCommand, IoProgram, MemOp, MemProgram, MemRequest};
