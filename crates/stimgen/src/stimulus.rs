//! Typed stimulus programs: the generator → DUV interface.
//!
//! Each simulated unit consumes one program type. A program is the fully
//! resolved output of the stimuli generator for one test-instance; it
//! contains no randomness of its own.

use serde::{Deserialize, Serialize};

/// One command on the I/O unit's DMA interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IoCommand {
    /// DMA channel (the unit arbitrates per channel).
    pub channel: u8,
    /// Number of data beats in the payload.
    pub payload_beats: u32,
    /// Idle cycles inserted after the command.
    pub gap: u32,
    /// Cycles until the target's completion response returns (the command
    /// holds a response-queue slot until then).
    pub resp_delay: u32,
    /// Whether the CRC engine checks this payload.
    pub crc_enable: bool,
    /// Whether an error is injected mid-payload (aborts the CRC burst).
    pub inject_error: bool,
    /// Read (`true`) or write (`false`) direction.
    pub is_read: bool,
    /// Whether the command raises a completion interrupt.
    pub raise_intr: bool,
}

/// A full I/O-unit stimulus: the commands of one test-instance.
pub type IoProgram = Vec<IoCommand>;

/// Operation kind of an L3 request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemOp {
    /// Demand load.
    Load,
    /// Store.
    Store,
    /// Software prefetch hint.
    Prefetch,
}

/// One request on the L3 cache's core-side interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRequest {
    /// Cache-line address (line granularity, not bytes).
    pub line_addr: u64,
    /// Operation kind.
    pub op: MemOp,
    /// Requesting thread.
    pub thread: u8,
    /// Idle cycles inserted before the request issues.
    pub gap: u32,
}

/// A full L3 stimulus: the requests of one test-instance.
pub type MemProgram = Vec<MemRequest>;

/// One fetch request on the IFU's front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FetchOp {
    /// Fetching thread.
    pub thread: u8,
    /// Fetch address (16-byte granule; bits \[1:0\] of `addr >> 4` select
    /// the sector within a 64-byte line).
    pub addr: u64,
    /// Whether the fetch group ends in a taken branch.
    pub taken_branch: bool,
    /// Downstream dispatch stall cycles while this fetch is in flight
    /// (builds fetch-buffer occupancy).
    pub stall: u32,
}

impl FetchOp {
    /// The sector (0-3) within the 64-byte line this fetch targets.
    #[must_use]
    pub fn sector(&self) -> u8 {
        ((self.addr >> 4) & 0b11) as u8
    }
}

/// A full IFU stimulus: the fetches of one test-instance.
pub type FetchProgram = Vec<FetchOp>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_sector_decoding() {
        assert_eq!(
            FetchOp {
                thread: 0,
                addr: 0x00,
                taken_branch: false,
                stall: 0
            }
            .sector(),
            0
        );
        assert_eq!(
            FetchOp {
                thread: 0,
                addr: 0x10,
                taken_branch: false,
                stall: 0
            }
            .sector(),
            1
        );
        assert_eq!(
            FetchOp {
                thread: 0,
                addr: 0x20,
                taken_branch: false,
                stall: 0
            }
            .sector(),
            2
        );
        assert_eq!(
            FetchOp {
                thread: 0,
                addr: 0x30,
                taken_branch: false,
                stall: 0
            }
            .sector(),
            3
        );
        // Sector wraps per 64-byte line.
        assert_eq!(
            FetchOp {
                thread: 0,
                addr: 0x40,
                taken_branch: false,
                stall: 0
            }
            .sector(),
            0
        );
    }

    #[test]
    fn programs_are_plain_data() {
        let p: IoProgram = vec![IoCommand {
            channel: 1,
            payload_beats: 8,
            gap: 0,
            resp_delay: 4,
            crc_enable: true,
            inject_error: false,
            is_read: true,
            raise_intr: false,
        }];
        let json = serde_json::to_string(&p).unwrap();
        let back: IoProgram = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
