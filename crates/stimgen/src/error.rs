//! Error type for stimulus generation.

use std::fmt;

/// Errors produced while sampling parameters during stimulus generation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StimGenError {
    /// The sampled parameter is not defined in the resolved set.
    UnknownParam(String),
    /// The parameter exists but has the wrong kind for the requested
    /// sample (e.g. asking for an identifier from a range parameter).
    WrongKind {
        /// Offending parameter name.
        param: String,
        /// What the caller asked for.
        requested: &'static str,
    },
    /// A weighted draw landed on a value incompatible with the requested
    /// type (e.g. an `Ident` value when an integer was requested).
    IncompatibleValue {
        /// Offending parameter name.
        param: String,
        /// Display form of the drawn value.
        value: String,
        /// What the caller asked for.
        requested: &'static str,
    },
}

impl fmt::Display for StimGenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StimGenError::UnknownParam(p) => {
                write!(f, "parameter `{p}` is not defined for this environment")
            }
            StimGenError::WrongKind { param, requested } => {
                write!(f, "parameter `{param}` cannot produce a {requested} sample")
            }
            StimGenError::IncompatibleValue {
                param,
                value,
                requested,
            } => write!(
                f,
                "parameter `{param}` drew `{value}`, which is not a valid {requested}"
            ),
        }
    }
}

impl std::error::Error for StimGenError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_param() {
        assert!(StimGenError::UnknownParam("X".into())
            .to_string()
            .contains("`X`"));
        let e = StimGenError::IncompatibleValue {
            param: "Op".into(),
            value: "load".into(),
            requested: "integer",
        };
        assert!(e.to_string().contains("load") && e.to_string().contains("integer"));
    }
}
