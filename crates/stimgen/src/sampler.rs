//! Biased random sampling of resolved parameters.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use ascdg_template::{ParamDef, ParamKind, ResolvedParams, Value};

use crate::StimGenError;

/// Draws random decisions from a template's resolved parameter set.
///
/// One sampler corresponds to one test-instance: it is created with the
/// instance's seed and consumed while generating the stimulus program.
/// Every random decision the environment makes — instruction mnemonics,
/// delays, addresses — goes through a named parameter, exactly as the
/// paper's biased random generators do.
///
/// # Examples
///
/// ```
/// use ascdg_stimgen::ParamSampler;
/// use ascdg_template::{ParamDef, ParamRegistry, TestTemplate};
///
/// let mut reg = ParamRegistry::new();
/// reg.define(ParamDef::range("Gap", 0, 4)?)?;
/// let resolved = reg.resolve(&TestTemplate::builder("t").build())?;
/// let mut s = ParamSampler::new(&resolved, 9);
/// for _ in 0..20 {
///     assert!((0..4).contains(&s.sample_int("Gap")?));
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ParamSampler<'a> {
    params: &'a ResolvedParams,
    rng: StdRng,
}

impl<'a> ParamSampler<'a> {
    /// Creates a sampler over `params` seeded with `seed`.
    #[must_use]
    pub fn new(params: &'a ResolvedParams, seed: u64) -> Self {
        ParamSampler {
            params,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn lookup(&self, name: &str) -> Result<&'a ParamDef, StimGenError> {
        self.params
            .get(name)
            .ok_or_else(|| StimGenError::UnknownParam(name.to_owned()))
    }

    /// Draws the raw [`Value`] of a parameter.
    ///
    /// For a weight parameter this is a weighted draw over its values; for
    /// a range parameter it is a uniform integer in `[lo, hi)` wrapped as
    /// [`Value::Int`].
    ///
    /// # Errors
    ///
    /// Returns [`StimGenError::UnknownParam`] for undefined names.
    pub fn sample_value(&mut self, name: &str) -> Result<Value, StimGenError> {
        let def = self.lookup(name)?;
        match def.kind() {
            ParamKind::Weights(ws) => {
                let total: u64 = ws.iter().map(|w| u64::from(w.weight)).sum();
                debug_assert!(total > 0, "validated parameters have positive total");
                let mut r = self.rng.random_range(0..total);
                for wv in ws {
                    let w = u64::from(wv.weight);
                    if r < w {
                        return Ok(wv.value.clone());
                    }
                    r -= w;
                }
                unreachable!("weighted draw fell off the end");
            }
            &ParamKind::Range { lo, hi } => Ok(Value::Int(self.rng.random_range(lo..hi))),
        }
    }

    /// Draws an integer from a parameter.
    ///
    /// Range parameters produce a uniform integer; weight parameters first
    /// draw a value, then resolve it: [`Value::Int`] is returned as-is and
    /// [`Value::SubRange`] is sampled uniformly — this is how skeletonized
    /// range parameters keep producing integers.
    ///
    /// # Errors
    ///
    /// Returns [`StimGenError::IncompatibleValue`] if the draw lands on a
    /// symbolic value.
    pub fn sample_int(&mut self, name: &str) -> Result<i64, StimGenError> {
        match self.sample_value(name)? {
            Value::Int(i) => Ok(i),
            Value::SubRange { lo, hi } => Ok(self.rng.random_range(lo..hi)),
            Value::Ident(s) => Err(StimGenError::IncompatibleValue {
                param: name.to_owned(),
                value: s,
                requested: "integer",
            }),
        }
    }

    /// Draws a symbolic choice from a weight parameter.
    ///
    /// # Errors
    ///
    /// Returns [`StimGenError::WrongKind`] for range parameters and
    /// [`StimGenError::IncompatibleValue`] if the draw lands on a
    /// non-symbolic value.
    pub fn sample_choice(&mut self, name: &str) -> Result<String, StimGenError> {
        let def = self.lookup(name)?;
        if def.kind().is_range() {
            return Err(StimGenError::WrongKind {
                param: name.to_owned(),
                requested: "symbolic choice",
            });
        }
        match self.sample_value(name)? {
            Value::Ident(s) => Ok(s),
            other => Err(StimGenError::IncompatibleValue {
                param: name.to_owned(),
                value: other.to_string(),
                requested: "symbolic choice",
            }),
        }
    }

    /// Draws an integer and compares it against `threshold`, treating the
    /// parameter as a percentage knob: returns `true` with probability
    /// `sample < threshold_percent` would have.
    ///
    /// This is the idiom for rate parameters like `ErrRate: range [0, 100)`
    /// used as "percent of commands that inject an error": each decision
    /// draws the parameter and fires when the draw is below the sampled
    /// percentage... in practice environments sample the *rate* once and
    /// then flip coins; use [`ParamSampler::rate`] for that.
    ///
    /// # Errors
    ///
    /// Propagates [`ParamSampler::sample_int`] failures.
    pub fn sample_percent(&mut self, name: &str) -> Result<bool, StimGenError> {
        let pct = self.sample_int(name)?;
        Ok(self.rng.random_range(0i64..100) < pct)
    }

    /// Samples a rate parameter once and returns it as a probability in
    /// `[0, 1]` (the parameter is interpreted as a percentage).
    ///
    /// # Errors
    ///
    /// Propagates [`ParamSampler::sample_int`] failures.
    pub fn rate(&mut self, name: &str) -> Result<f64, StimGenError> {
        Ok(self.sample_int(name)? as f64 / 100.0)
    }

    /// Flips a coin with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.random::<f64>() < p.clamp(0.0, 1.0)
    }

    /// Draws a uniform integer in `[lo, hi)` outside any parameter —
    /// for decisions the environment does not expose as parameters.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty uniform range [{lo}, {hi})");
        self.rng.random_range(lo..hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascdg_template::{ParamRegistry, TestTemplate};

    fn resolved() -> ResolvedParams {
        let mut reg = ParamRegistry::new();
        reg.define(
            ParamDef::weights("Op", [("load", 75u32), ("store", 25u32), ("sync", 0u32)]).unwrap(),
        )
        .unwrap();
        reg.define(ParamDef::range("Gap", 0, 10).unwrap()).unwrap();
        reg.define(
            ParamDef::weights(
                "Len",
                [
                    (Value::SubRange { lo: 1, hi: 9 }, 90u32),
                    (Value::SubRange { lo: 9, hi: 65 }, 10u32),
                    (Value::Int(128), 5u32),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        reg.define(ParamDef::range("ErrRate", 0, 100).unwrap())
            .unwrap();
        reg.resolve(&TestTemplate::builder("t").build()).unwrap()
    }

    #[test]
    fn weighted_draw_respects_weights() {
        let r = resolved();
        let mut s = ParamSampler::new(&r, 1);
        let mut loads = 0;
        let n = 4000;
        for _ in 0..n {
            match s.sample_choice("Op").unwrap().as_str() {
                "load" => loads += 1,
                "store" => {}
                other => panic!("zero-weight value drawn: {other}"),
            }
        }
        let frac = loads as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.03, "load fraction {frac}");
    }

    #[test]
    fn range_draws_stay_in_range() {
        let r = resolved();
        let mut s = ParamSampler::new(&r, 2);
        for _ in 0..200 {
            let v = s.sample_int("Gap").unwrap();
            assert!((0..10).contains(&v));
        }
    }

    #[test]
    fn subrange_values_resolve_to_integers() {
        let r = resolved();
        let mut s = ParamSampler::new(&r, 3);
        let mut seen_small = false;
        let mut seen_exact = false;
        for _ in 0..2000 {
            let v = s.sample_int("Len").unwrap();
            assert!((1..65).contains(&v) || v == 128, "out of domain: {v}");
            seen_small |= (1..9).contains(&v);
            seen_exact |= v == 128;
        }
        assert!(seen_small && seen_exact);
    }

    #[test]
    fn wrong_kind_errors() {
        let r = resolved();
        let mut s = ParamSampler::new(&r, 4);
        assert!(matches!(
            s.sample_choice("Gap"),
            Err(StimGenError::WrongKind { .. })
        ));
        assert!(matches!(
            s.sample_int("Op"),
            Err(StimGenError::IncompatibleValue { .. })
        ));
        assert!(matches!(
            s.sample_value("Missing"),
            Err(StimGenError::UnknownParam(_))
        ));
    }

    #[test]
    fn deterministic_per_seed() {
        let r = resolved();
        let draw = |seed| {
            let mut s = ParamSampler::new(&r, seed);
            (0..50)
                .map(|_| s.sample_int("Gap").unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(77), draw(77));
        assert_ne!(draw(77), draw(78));
    }

    #[test]
    fn rate_and_chance() {
        let r = resolved();
        let mut s = ParamSampler::new(&r, 5);
        let rate = s.rate("ErrRate").unwrap();
        assert!((0.0..1.0).contains(&rate));
        let hits = (0..1000).filter(|_| s.chance(0.3)).count();
        assert!((200..400).contains(&hits), "chance(0.3) fired {hits}/1000");
        assert!(!s.chance(0.0));
        assert!(s.chance(1.0));
    }

    #[test]
    fn sample_percent_statistics() {
        let mut reg = ParamRegistry::new();
        reg.define(ParamDef::range("P", 30, 31).unwrap()).unwrap();
        let r = reg.resolve(&TestTemplate::builder("t").build()).unwrap();
        let mut s = ParamSampler::new(&r, 6);
        let hits = (0..2000).filter(|_| s.sample_percent("P").unwrap()).count();
        assert!((450..750).contains(&hits), "P=30% fired {hits}/2000");
    }

    #[test]
    fn uniform_helper() {
        let r = resolved();
        let mut s = ParamSampler::new(&r, 7);
        for _ in 0..100 {
            assert!((5..8).contains(&s.uniform(5, 8)));
        }
    }

    #[test]
    #[should_panic(expected = "empty uniform range")]
    fn uniform_empty_range_panics() {
        let r = resolved();
        let mut s = ParamSampler::new(&r, 8);
        let _ = s.uniform(3, 3);
    }
}
