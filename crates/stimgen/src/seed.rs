//! Deterministic seed derivation for batch simulation.

/// Mixes two 64-bit values into one (a SplitMix64-style finalizer).
///
/// Used to derive independent RNG streams from a base seed and an index
/// without correlation between neighboring indices.
///
/// # Examples
///
/// ```
/// use ascdg_stimgen::mix_seed;
/// assert_ne!(mix_seed(1, 0), mix_seed(1, 1));
/// assert_eq!(mix_seed(7, 3), mix_seed(7, 3));
/// ```
#[must_use]
pub fn mix_seed(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the canonical seed for test-instance `index` generated from the
/// template named `template` under a run-wide `base` seed.
///
/// Two properties matter for the batch environment:
///
/// * **reproducibility** — the same `(base, template, index)` triple always
///   yields the same instance, regardless of worker scheduling;
/// * **independence** — different templates and different indices get
///   uncorrelated streams, so per-template statistics are unbiased.
///
/// # Examples
///
/// ```
/// use ascdg_stimgen::instance_seed;
/// let a = instance_seed(42, "dma_stress", 0);
/// let b = instance_seed(42, "dma_stress", 1);
/// let c = instance_seed(42, "other", 0);
/// assert!(a != b && a != c);
/// assert_eq!(a, instance_seed(42, "dma_stress", 0));
/// ```
#[must_use]
pub fn instance_seed(base: u64, template: &str, index: u64) -> u64 {
    // FNV-1a over the template name, then mix with base and index.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in template.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix_seed(mix_seed(base, h), index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mix_is_deterministic_and_spreads() {
        let seeds: HashSet<u64> = (0..1000).map(|i| mix_seed(123, i)).collect();
        assert_eq!(seeds.len(), 1000, "collisions in 1000 mixed seeds");
    }

    #[test]
    fn instance_seeds_unique_across_templates_and_indices() {
        let mut seen = HashSet::new();
        for t in ["a", "b", "ab", "ba"] {
            for i in 0..100 {
                assert!(seen.insert(instance_seed(7, t, i)), "collision at {t}/{i}");
            }
        }
    }

    #[test]
    fn base_seed_changes_everything() {
        assert_ne!(instance_seed(1, "t", 0), instance_seed(2, "t", 0));
    }

    #[test]
    fn empty_template_name_is_fine() {
        let _ = instance_seed(0, "", 0);
    }
}
