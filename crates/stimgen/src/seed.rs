//! Deterministic seed derivation for batch simulation.

/// Mixes two 64-bit values into one (a SplitMix64-style finalizer).
///
/// Used to derive independent RNG streams from a base seed and an index
/// without correlation between neighboring indices.
///
/// # Examples
///
/// ```
/// use ascdg_stimgen::mix_seed;
/// assert_ne!(mix_seed(1, 0), mix_seed(1, 1));
/// assert_eq!(mix_seed(7, 3), mix_seed(7, 3));
/// ```
#[must_use]
pub fn mix_seed(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a template name — the string-to-number step of
/// [`instance_seed`], exposed so batch runners can hash a name **once**
/// and derive every per-simulation seed numerically (see [`SeedStream`]).
#[must_use]
pub fn name_hash(template: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in template.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A precomputed per-template seed stream: the template name is hashed
/// once at construction, after which every simulation seed is three
/// [`mix_seed`] rounds of pure integer arithmetic.
///
/// `SeedStream::new(base, name).sampler_seed(i)` is **byte-identical** to
/// the string-hashing path `instance_seed(mix_seed(base, i), name, 0)`
/// that batch runners previously evaluated per simulation — the stream is
/// the same, only the name hash is hoisted out of the hot loop (pinned by
/// a golden test below).
///
/// # Examples
///
/// ```
/// use ascdg_stimgen::{instance_seed, mix_seed, SeedStream};
/// let s = SeedStream::new(7, "dma_stress");
/// assert_eq!(s.sampler_seed(3), instance_seed(mix_seed(7, 3), "dma_stress", 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedStream {
    base: u64,
    name_hash: u64,
}

impl SeedStream {
    /// A stream for instances of the template named `name` under `base`.
    #[must_use]
    pub fn new(base: u64, name: &str) -> Self {
        SeedStream {
            base,
            name_hash: name_hash(name),
        }
    }

    /// A stream from an already-hashed template name.
    #[must_use]
    pub fn with_hash(base: u64, name_hash: u64) -> Self {
        SeedStream { base, name_hash }
    }

    /// The stream's base seed.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The hashed template name shared by every seed of the stream.
    #[must_use]
    pub fn template_hash(&self) -> u64 {
        self.name_hash
    }

    /// The same stream re-based (same template hash, different base seed).
    #[must_use]
    pub fn rebased(&self, base: u64) -> Self {
        SeedStream {
            base,
            name_hash: self.name_hash,
        }
    }

    /// The generator seed of simulation `sim_idx`.
    #[must_use]
    pub fn sampler_seed(&self, sim_idx: u64) -> u64 {
        mix_seed(mix_seed(mix_seed(self.base, sim_idx), self.name_hash), 0)
    }
}

/// Derives the canonical seed for test-instance `index` generated from the
/// template named `template` under a run-wide `base` seed.
///
/// Two properties matter for the batch environment:
///
/// * **reproducibility** — the same `(base, template, index)` triple always
///   yields the same instance, regardless of worker scheduling;
/// * **independence** — different templates and different indices get
///   uncorrelated streams, so per-template statistics are unbiased.
///
/// # Examples
///
/// ```
/// use ascdg_stimgen::instance_seed;
/// let a = instance_seed(42, "dma_stress", 0);
/// let b = instance_seed(42, "dma_stress", 1);
/// let c = instance_seed(42, "other", 0);
/// assert!(a != b && a != c);
/// assert_eq!(a, instance_seed(42, "dma_stress", 0));
/// ```
#[must_use]
pub fn instance_seed(base: u64, template: &str, index: u64) -> u64 {
    // FNV-1a over the template name, then mix with base and index.
    mix_seed(mix_seed(base, name_hash(template)), index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mix_is_deterministic_and_spreads() {
        let seeds: HashSet<u64> = (0..1000).map(|i| mix_seed(123, i)).collect();
        assert_eq!(seeds.len(), 1000, "collisions in 1000 mixed seeds");
    }

    #[test]
    fn instance_seeds_unique_across_templates_and_indices() {
        let mut seen = HashSet::new();
        for t in ["a", "b", "ab", "ba"] {
            for i in 0..100 {
                assert!(seen.insert(instance_seed(7, t, i)), "collision at {t}/{i}");
            }
        }
    }

    #[test]
    fn base_seed_changes_everything() {
        assert_ne!(instance_seed(1, "t", 0), instance_seed(2, "t", 0));
    }

    #[test]
    fn empty_template_name_is_fine() {
        let _ = instance_seed(0, "", 0);
    }

    /// Golden pin: the numeric [`SeedStream`] derivation must reproduce the
    /// historical string-hashing path byte for byte, for every template
    /// name shape the flow generates (stock names, `__p<idx>` point names,
    /// harvest names, the empty string).
    #[test]
    fn seed_stream_matches_string_hash_path_exactly() {
        let names = [
            "",
            "io_burst_stress",
            "io_burst_stress__p17",
            "skel__p18446744073709551615",
            "l3_sweep_cdg_best",
        ];
        for name in names {
            for base in [0u64, 1, 42, u64::MAX] {
                let stream = SeedStream::new(base, name);
                assert_eq!(stream.template_hash(), name_hash(name));
                for i in [0u64, 1, 2, 63, 64, 1000, u64::MAX] {
                    assert_eq!(
                        stream.sampler_seed(i),
                        instance_seed(mix_seed(base, i), name, 0),
                        "stream diverged at base={base} name={name:?} i={i}"
                    );
                }
            }
        }
    }

    /// Absolute golden values, so a change to `mix_seed`/`name_hash` (not
    /// just a mismatch between the two derivations) is caught too.
    #[test]
    fn seed_stream_absolute_golden_values() {
        let s = SeedStream::new(2021, "io_burst_stress__p1");
        assert_eq!(
            s.sampler_seed(0),
            instance_seed(mix_seed(2021, 0), "io_burst_stress__p1", 0)
        );
        // Known-good constants captured from the pre-refactor stream.
        assert_eq!(name_hash(""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(mix_seed(0, 0), 0);
        assert_eq!(
            SeedStream::with_hash(7, name_hash("x")),
            SeedStream::new(7, "x")
        );
        assert_eq!(SeedStream::new(1, "t").rebased(2), SeedStream::new(2, "t"));
        assert_eq!(SeedStream::new(9, "t").base(), 9);
    }
}
