//! Differential tests pinning [`VerifEnv::simulate_batch`] and the
//! bit-plane entry [`VerifEnv::simulate_batch_plane`] to the sequential
//! [`VerifEnv::simulate_seeded`] loop, byte for byte.
//!
//! Every built-in unit overrides `simulate_batch` with a specialized
//! kernel that generates stimulus into a reused scratch arena and runs the
//! cycle loops back to back, and `simulate_batch_plane` with the same
//! kernel recording into a transposed coverage bit-plane. These tests are
//! the contract that both specializations are *purely* throughput changes:
//! for every unit, every chunking (1, 2, 63, 64, 65, 127, ragged tails)
//! and every seed stream, the batched coverage — per-sim vectors and
//! extracted plane lanes alike — equals the one-at-a-time reference,
//! including when the scratch arena is warm from unrelated prior chunks
//! (or from the *other* batch entry point), and when several worker
//! threads batch the same work concurrently (`ASCDG_TEST_THREADS` sizes
//! the matrix).

use ascdg_coverage::{CoverageVector, PLANE_LANES};
use ascdg_duv::ifu::IfuEnv;
use ascdg_duv::io_unit::IoEnv;
use ascdg_duv::l3cache::L3Env;
use ascdg_duv::synthetic::SyntheticEnv;
use ascdg_duv::{SimScratch, VerifEnv};
use proptest::prelude::*;

/// Worker-thread matrix width (`ASCDG_TEST_THREADS`, default 4).
fn test_threads() -> usize {
    std::env::var("ASCDG_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4)
}

/// Runs `f` against one of the four built-in environments.
fn with_env<R>(which: usize, f: impl FnOnce(&dyn VerifEnv) -> R) -> R {
    match which % 4 {
        0 => f(&IfuEnv::new()),
        1 => f(&L3Env::new()),
        2 => f(&IoEnv::new()),
        _ => f(&SyntheticEnv::default()),
    }
}

/// SplitMix64-style per-instance seeds — same shape the batch runners
/// derive from a [`ascdg_stimgen::SeedStream`], without depending on it.
fn seed_vec(base: u64, n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| {
            let mut z = base ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        })
        .collect()
}

/// The sequential reference: one `simulate_seeded` per seed, in order.
fn sequential(
    env: &dyn VerifEnv,
    resolved: &ascdg_template::ResolvedParams,
    seeds: &[u64],
) -> Vec<CoverageVector> {
    seeds
        .iter()
        .map(|&s| env.simulate_seeded(resolved, s).expect("simulate_seeded"))
        .collect()
}

/// The batched run: `simulate_batch` over `chunk`-sized slices, reusing
/// one scratch arena across all chunks so later chunks hit warm buffers.
fn batched(
    env: &dyn VerifEnv,
    resolved: &ascdg_template::ResolvedParams,
    seeds: &[u64],
    chunk: usize,
) -> Vec<CoverageVector> {
    let mut scratch = SimScratch::new();
    let mut out = Vec::with_capacity(seeds.len());
    for block in seeds.chunks(chunk.max(1)) {
        out.extend(
            env.simulate_batch(resolved, block, &mut scratch)
                .expect("simulate_batch"),
        );
    }
    out
}

/// The bit-plane run: `simulate_batch_plane` over `chunk`-sized slices
/// split into kernel rounds of at most [`PLANE_LANES`] seeds — exactly
/// the shape the batch runner dispatches — reusing one scratch arena,
/// then extracting every lane back to row-major form for comparison.
fn planed(
    env: &dyn VerifEnv,
    resolved: &ascdg_template::ResolvedParams,
    seeds: &[u64],
    chunk: usize,
) -> Vec<CoverageVector> {
    let events = env.coverage_model().len();
    let mut scratch = SimScratch::new();
    let mut out = Vec::with_capacity(seeds.len());
    for block in seeds.chunks(chunk.max(1)) {
        for round in block.chunks(PLANE_LANES) {
            env.simulate_batch_plane(resolved, round, &mut scratch)
                .expect("simulate_batch_plane");
            for lane in 0..round.len() {
                let mut v = CoverageVector::empty(events);
                scratch.plane().extract_into(lane, &mut v);
                out.push(v);
            }
        }
    }
    out
}

/// One differential check: resolve a stock template, run all three paths
/// over the same seeds, demand equality — on this thread and on every
/// thread of the `ASCDG_TEST_THREADS` matrix with its own scratch arena.
fn check(which: usize, tmpl_idx: usize, base_seed: u64, sims: usize, chunk: usize) {
    with_env(which, |env| {
        let library = env.stock_library();
        let template = library
            .get(tmpl_idx % library.len())
            .expect("stock template");
        let resolved = env.registry().resolve(template).expect("resolve");
        let seeds = seed_vec(base_seed, sims);
        let reference = sequential(env, &resolved, &seeds);
        assert_eq!(
            batched(env, &resolved, &seeds, chunk),
            reference,
            "{} batch (chunk {chunk}) diverged from sequential",
            env.unit_name()
        );
        assert_eq!(
            planed(env, &resolved, &seeds, chunk),
            reference,
            "{} plane (chunk {chunk}) diverged from sequential",
            env.unit_name()
        );
        std::thread::scope(|scope| {
            for _ in 0..test_threads() {
                scope.spawn(|| {
                    assert_eq!(
                        batched(env, &resolved, &seeds, chunk),
                        reference,
                        "{} concurrent batch (chunk {chunk}) diverged",
                        env.unit_name()
                    );
                    assert_eq!(
                        planed(env, &resolved, &seeds, chunk),
                        reference,
                        "{} concurrent plane (chunk {chunk}) diverged",
                        env.unit_name()
                    );
                });
            }
        });
    });
}

/// The chunkings the batch runner actually produces around its 64-wide
/// kernel block: single, tiny, one-under, exact, one-over, two-minus-one
/// — each leaving a different ragged tail of 130 sims.
#[test]
fn kernel_block_edges_are_identical_for_every_unit() {
    for which in 0..4 {
        for chunk in [1usize, 2, 63, 64, 65, 127] {
            check(which, 0, 0xB47C_0000 + chunk as u64, 130, chunk);
        }
    }
}

/// A warm arena carried across *templates* must not leak state: interleave
/// two templates through one scratch and compare each against its own
/// fresh-scratch reference.
#[test]
fn warm_scratch_does_not_leak_across_templates() {
    for which in 0..4 {
        with_env(which, |env| {
            let library = env.stock_library();
            let a = library.get(0).expect("template 0");
            let b = library.get(1 % library.len()).expect("template 1");
            let ra = env.registry().resolve(a).expect("resolve a");
            let rb = env.registry().resolve(b).expect("resolve b");
            let seeds = seed_vec(0x5EED, 97);
            let ref_a = sequential(env, &ra, &seeds);
            let ref_b = sequential(env, &rb, &seeds);
            let events = env.coverage_model().len();
            let mut scratch = SimScratch::new();
            for round in 0..2 {
                for (resolved, reference) in [(&ra, &ref_a), (&rb, &ref_b)] {
                    let mut out = Vec::new();
                    for block in seeds.chunks(64) {
                        out.extend(
                            env.simulate_batch(resolved, block, &mut scratch)
                                .expect("batch"),
                        );
                    }
                    assert_eq!(
                        &out,
                        reference,
                        "{} round {round}: warm-scratch batch diverged",
                        env.unit_name()
                    );
                    // Same arena, other entry point: the plane kernel must
                    // be unaffected by the per-sim batch that just warmed
                    // the buffers (and vice versa on the next iteration).
                    let mut lanes = Vec::new();
                    for block in seeds.chunks(PLANE_LANES) {
                        env.simulate_batch_plane(resolved, block, &mut scratch)
                            .expect("plane");
                        for lane in 0..block.len() {
                            let mut v = CoverageVector::empty(events);
                            scratch.plane().extract_into(lane, &mut v);
                            lanes.push(v);
                        }
                    }
                    assert_eq!(
                        &lanes,
                        reference,
                        "{} round {round}: warm-scratch plane diverged",
                        env.unit_name()
                    );
                }
            }
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary unit, template, seed stream, sim count and chunking:
    /// batched simulation is byte-identical to the sequential loop.
    #[test]
    fn batch_matches_sequential(
        which in 0usize..4,
        tmpl_idx in 0usize..8,
        base_seed in any::<u64>(),
        sims in 1usize..140,
        chunk in prop_oneof![Just(1usize), Just(2), Just(63), Just(64), Just(65), 1usize..130],
    ) {
        check(which, tmpl_idx, base_seed, sims, chunk);
    }
}
