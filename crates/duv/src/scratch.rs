//! Per-worker scratch state for batched simulation.

use ascdg_coverage::{CoveragePlane, CoverageVector};
use ascdg_stimgen::{FetchOp, IoCommand, MemRequest};

use crate::kernel::DelayLine;

/// Arena-reused buffers for a worker's batched simulations.
///
/// One `SimScratch` belongs to one worker thread and is threaded through
/// [`VerifEnv::simulate_batch`](crate::VerifEnv::simulate_batch) calls.
/// Each unit's batch kernel reuses the buffers it needs — stimulus program
/// storage, cycle-model state (cache sets, delay lines), and a pool of
/// recycled [`CoverageVector`]s — instead of reallocating them per
/// simulation. The scratch never influences results: every buffer is
/// cleared (not trusted) before a simulation uses it, so a fresh scratch
/// and a heavily reused one produce byte-identical coverage.
///
/// # Examples
///
/// ```
/// use ascdg_duv::{io_unit::IoEnv, SimScratch, VerifEnv};
///
/// let env = IoEnv::new();
/// let t = env.stock_library().get(0).unwrap().clone();
/// let resolved = env.registry().resolve(&t).unwrap();
/// let mut scratch = SimScratch::new();
/// let covs = env.simulate_batch(&resolved, &[1, 2, 3], &mut scratch).unwrap();
/// assert_eq!(covs.len(), 3);
/// ```
#[derive(Debug, Default)]
pub struct SimScratch {
    /// IFU fetch programs of the whole chunk, laid out back to back.
    pub(crate) fetch_ops: Vec<FetchOp>,
    /// Prefix bounds into `fetch_ops`: program `i` is `bounds[i]..bounds[i+1]`.
    pub(crate) fetch_bounds: Vec<usize>,
    /// L3 stimulus program of the current simulation.
    pub(crate) mem_ops: Vec<MemRequest>,
    /// I/O-unit stimulus program of the current simulation.
    pub(crate) io_cmds: Vec<IoCommand>,
    /// L3 per-set LRU stacks (resized to `SETS` on first use).
    pub(crate) l3_sets: Vec<Vec<u64>>,
    /// L3 in-flight fill responses.
    pub(crate) l3_inflight: DelayLine<u64>,
    /// I/O-unit outstanding completion responses.
    pub(crate) io_responses: DelayLine<()>,
    /// Synthetic-unit knob coordinates.
    pub(crate) knob_xs: Vec<f64>,
    /// The recycled coverage bit-plane
    /// [`VerifEnv::simulate_batch_plane`](crate::VerifEnv::simulate_batch_plane)
    /// records the current block into.
    pub(crate) plane: CoveragePlane,
    /// Recycled coverage vectors, ready for [`SimScratch::take_cov`].
    free: Vec<CoverageVector>,
    reused: u64,
    allocated: u64,
}

impl SimScratch {
    /// Creates an empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        SimScratch::default()
    }

    /// Takes a zeroed coverage vector of `len` events, recycling one from
    /// the pool when the width matches (vectors recycled under a different
    /// coverage model are dropped).
    #[must_use]
    pub fn take_cov(&mut self, len: usize) -> CoverageVector {
        while let Some(mut cov) = self.free.pop() {
            if cov.len() == len {
                cov.reset();
                self.reused += 1;
                return cov;
            }
        }
        self.allocated += 1;
        CoverageVector::empty(len)
    }

    /// Returns a finished coverage vector to the pool for reuse.
    pub fn recycle(&mut self, cov: CoverageVector) {
        self.free.push(cov);
    }

    /// Coverage vectors served from the pool since construction.
    #[must_use]
    pub fn cov_reused(&self) -> u64 {
        self.reused
    }

    /// Coverage vectors freshly allocated since construction.
    #[must_use]
    pub fn cov_allocated(&self) -> u64 {
        self.allocated
    }

    /// The bit-plane the last
    /// [`VerifEnv::simulate_batch_plane`](crate::VerifEnv::simulate_batch_plane)
    /// call recorded into — callers fold or extract lanes from it.
    #[must_use]
    pub fn plane(&self) -> &CoveragePlane {
        &self.plane
    }

    /// Mutable access to the recycled bit-plane (kernels `begin` a block
    /// on it before recording).
    #[must_use]
    pub fn plane_mut(&mut self) -> &mut CoveragePlane {
        &mut self.plane
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascdg_coverage::EventId;

    #[test]
    fn take_recycle_take_reuses() {
        let mut s = SimScratch::new();
        let mut cov = s.take_cov(10);
        cov.set(EventId(3));
        s.recycle(cov);
        let cov = s.take_cov(10);
        assert_eq!(cov, CoverageVector::empty(10), "recycled vector not reset");
        assert_eq!((s.cov_allocated(), s.cov_reused()), (1, 1));
    }

    #[test]
    fn width_mismatch_allocates_fresh() {
        let mut s = SimScratch::new();
        let cov = s.take_cov(10);
        s.recycle(cov);
        let cov = s.take_cov(20);
        assert_eq!(cov.len(), 20);
        assert_eq!((s.cov_allocated(), s.cov_reused()), (2, 0));
    }
}
