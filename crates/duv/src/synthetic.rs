//! A configurable synthetic verification environment.
//!
//! The paper's companion work (Gal et al., *How to catch a lion in the
//! desert*, Optimization & Engineering 2020) studies the CDG optimization
//! problem on synthetic landscapes with controllable hardness. This module
//! provides the same facility as a [`VerifEnv`]: a "unit" whose coverage
//! events form a family with a *tunable difficulty gradient* over a hidden
//! optimal configuration, so CDG algorithms can be compared under
//! controlled conditions (dimension, hardness, noise, irrelevant-parameter
//! count) instead of only on the three micro-architectural models.
//!
//! The model: each relevant knob `Knob_i` contributes a coordinate
//! `x_i ∈ [0,1]`; the environment hides an optimum `o ∈ [0,1]^R` (derived
//! from the config seed); a simulation's *quality* is the weakest-link
//! score `s = 1 - max_i |x_i - o_i|`; family event `fam_k` fires with
//! probability `sigmoid(hardness * (s - threshold_k))` where thresholds
//! climb toward 1 with `k`. Deep family members therefore require settings
//! close to the hidden optimum in *every* relevant knob — the cliff-shaped
//! difficulty that makes real coverage closure hard.

use ascdg_coverage::{CoverageModel, CoverageSink, CoverageVector};
use ascdg_stimgen::{mix_seed, ParamSampler};
use ascdg_template::{
    ParamDef, ParamRegistry, ResolvedParams, TemplateLibrary, TestTemplate, Value,
};

use crate::{EnvError, SimScratch, VerifEnv};

/// Configuration of a [`SyntheticEnv`].
///
/// # Examples
///
/// ```
/// use ascdg_duv::synthetic::{SyntheticConfig, SyntheticEnv};
/// use ascdg_duv::VerifEnv;
///
/// let env = SyntheticEnv::new(SyntheticConfig::default());
/// assert!(env.coverage_model().id("fam_01").is_ok());
/// let t = env.stock_library().get(0).unwrap().clone();
/// let cov = env.simulate(&t, 1).unwrap();
/// assert_eq!(cov.len(), env.coverage_model().len());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// Number of family events `fam_01 .. fam_D` (the difficulty ladder).
    pub family_depth: usize,
    /// Number of relevant knobs (the search dimension before subranging).
    pub relevant_params: usize,
    /// Number of irrelevant decoy parameters.
    pub irrelevant_params: usize,
    /// Number of background events with fixed hit probabilities.
    pub noise_events: usize,
    /// Gradient steepness: larger values make the family cliff sharper
    /// (harder for the optimizer, flatter far field).
    pub hardness: f64,
    /// Quality threshold of the *deepest* family member (the shallowest
    /// sits near 0.35; thresholds are spaced linearly in between).
    pub top_threshold: f64,
    /// Seed deriving the hidden optimal configuration.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            family_depth: 8,
            relevant_params: 4,
            irrelevant_params: 6,
            noise_events: 8,
            hardness: 40.0,
            top_threshold: 0.93,
            seed: 0xCD6,
        }
    }
}

/// The synthetic verification environment. See the module docs for the
/// probability model.
#[derive(Debug, Clone)]
pub struct SyntheticEnv {
    config: SyntheticConfig,
    registry: ParamRegistry,
    model: CoverageModel,
    library: TemplateLibrary,
    /// Hidden optimum, one coordinate per relevant knob.
    optimum: Vec<f64>,
    /// `fam_NN` event ids indexed by depth-1 (hot-path cache).
    fam_ids: Vec<ascdg_coverage::EventId>,
    /// `bg_NN` event ids by index (hot-path cache).
    bg_ids: Vec<ascdg_coverage::EventId>,
    /// Pre-rendered knob parameter names (hot-path cache).
    knob_names: Vec<String>,
    /// Pre-rendered decoy parameter names (hot-path cache).
    decoy_names: Vec<String>,
}

impl Default for SyntheticEnv {
    fn default() -> Self {
        SyntheticEnv::new(SyntheticConfig::default())
    }
}

fn knob_name(i: usize) -> String {
    format!("Knob{i:02}")
}

fn decoy_name(i: usize) -> String {
    format!("Decoy{i:02}")
}

impl SyntheticEnv {
    /// Builds the environment.
    ///
    /// # Panics
    ///
    /// Panics when `family_depth` or `relevant_params` is zero.
    #[must_use]
    pub fn new(config: SyntheticConfig) -> Self {
        assert!(config.family_depth > 0, "need at least one family event");
        assert!(config.relevant_params > 0, "need at least one knob");
        let sub = |lo, hi| Value::SubRange { lo, hi };

        let mut registry = ParamRegistry::new();
        for i in 0..config.relevant_params {
            // Knobs are weight parameters over four quarters of [0, 100);
            // the default concentrates on the lowest quarter, so the
            // default quality is far from most hidden optima.
            registry
                .define(
                    ParamDef::weights(
                        knob_name(i),
                        [
                            (sub(0, 25), 85u32),
                            (sub(25, 50), 15),
                            (sub(50, 75), 0),
                            (sub(75, 100), 0),
                        ],
                    )
                    .expect("valid weights"),
                )
                .expect("unique knob names");
        }
        for i in 0..config.irrelevant_params {
            registry
                .define(ParamDef::range(decoy_name(i), 0, 100).expect("valid range"))
                .expect("unique decoy names");
        }

        let mut names: Vec<String> = (1..=config.family_depth)
            .map(|k| format!("fam_{k:02}"))
            .collect();
        names.extend((0..config.noise_events).map(|i| format!("bg_{i:02}")));
        let model = CoverageModel::from_names("synthetic", names).expect("unique names");

        // Hidden optimum coordinates in [0.3, 1.0): reachable but away
        // from the default low-quarter bias.
        let optimum: Vec<f64> = (0..config.relevant_params)
            .map(|i| {
                let h = mix_seed(config.seed, i as u64);
                0.3 + 0.7 * ((h % 10_000) as f64 / 10_000.0)
            })
            .collect();

        // Stock library: a smoke template, one mild template per knob pair
        // (the TAC signal), and decoy templates.
        let mut library = TemplateLibrary::new();
        library
            .push(TestTemplate::builder("syn_smoke").build())
            .expect("unique");
        // The "all knobs" template the coarse search should find: every
        // relevant knob listed with mild, spread-out weights.
        let mut all_knobs = TestTemplate::builder("syn_sweep");
        for i in 0..config.relevant_params {
            all_knobs = all_knobs
                .weights(
                    knob_name(i),
                    [
                        (sub(0, 25), 40u32),
                        (sub(25, 50), 30),
                        (sub(50, 75), 20),
                        (sub(75, 100), 10),
                    ],
                )
                .expect("valid weights");
        }
        library.push(all_knobs.build()).expect("unique");
        for i in 0..config.irrelevant_params.min(4) {
            library
                .push(
                    TestTemplate::builder(format!("syn_decoy{i:02}"))
                        .range(decoy_name(i), 50, 100)
                        .expect("within domain")
                        .build(),
                )
                .expect("unique");
        }

        let fam_ids = (1..=config.family_depth)
            .map(|k| model.id(&format!("fam_{k:02}")).expect("family event"))
            .collect();
        let bg_ids = (0..config.noise_events)
            .map(|i| model.id(&format!("bg_{i:02}")).expect("bg event"))
            .collect();
        let knob_names = (0..config.relevant_params).map(knob_name).collect();
        let decoy_names = (0..config.irrelevant_params).map(decoy_name).collect();
        SyntheticEnv {
            config,
            registry,
            model,
            library,
            optimum,
            fam_ids,
            bg_ids,
            knob_names,
            decoy_names,
        }
    }

    /// The configuration this environment was built with.
    #[must_use]
    pub fn config(&self) -> &SyntheticConfig {
        &self.config
    }

    /// The hidden optimum (exposed for tests and oracle comparisons; a
    /// real verification environment has no such oracle).
    #[must_use]
    pub fn hidden_optimum(&self) -> &[f64] {
        &self.optimum
    }

    /// The quality threshold of family member `k` (1-based).
    #[must_use]
    pub fn threshold(&self, k: usize) -> f64 {
        let depth = self.config.family_depth as f64;
        let lo = 0.35;
        let hi = self.config.top_threshold;
        if depth <= 1.0 {
            hi
        } else {
            lo + (hi - lo) * ((k - 1) as f64 / (depth - 1.0))
        }
    }

    /// The quality score of a knob configuration (1 = at the hidden
    /// optimum). Quality is a *weakest-link* measure — one distant knob
    /// ruins it — because hardware corner events require every condition
    /// to align simultaneously.
    #[must_use]
    pub fn quality(&self, xs: &[f64]) -> f64 {
        let max_dist = xs
            .iter()
            .zip(&self.optimum)
            .map(|(x, o)| (x - o).abs())
            .fold(0.0, f64::max);
        1.0 - max_dist
    }

    /// One simulation into a caller-provided knob buffer and zeroed
    /// coverage sink (shared by the per-sim, batch, and bit-plane entry
    /// points — the sink is a `CoverageVector` or a plane lane).
    fn simulate_into<S: CoverageSink>(
        &self,
        resolved: &ResolvedParams,
        sampler_seed: u64,
        xs: &mut Vec<f64>,
        cov: &mut S,
    ) -> Result<(), EnvError> {
        let mut sampler = ParamSampler::new(resolved, sampler_seed);
        // Draw the knob configuration of this instance.
        xs.clear();
        for name in &self.knob_names {
            xs.push(sampler.sample_int(name)? as f64 / 100.0);
        }
        // Decoys are drawn (consuming entropy, like real generators) but
        // do not influence the family.
        let mut decoy_acc = 0i64;
        for name in &self.decoy_names {
            decoy_acc ^= sampler.sample_int(name)?;
        }

        let s = self.quality(xs);
        for (k, &id) in self.fam_ids.iter().enumerate() {
            let p = sigmoid(self.config.hardness * (s - self.threshold(k + 1)));
            // Hardware events have a true cliff: far below the threshold
            // the event is *impossible*, not merely unlikely. Clipping the
            // sigmoid tail reproduces that (and keeps the deep family
            // genuinely uncovered under default traffic).
            let p = if p < PROBABILITY_FLOOR { 0.0 } else { p };
            if sampler.chance(p) {
                cov.hit(id);
            }
        }
        // Background events: fixed probabilities, lightly keyed off the
        // decoys so decoy templates still move *something*.
        for (i, &id) in self.bg_ids.iter().enumerate() {
            let base = 0.6 / (i + 1) as f64;
            let p = base + ((decoy_acc >> i) & 1) as f64 * 0.05;
            if sampler.chance(p) {
                cov.hit(id);
            }
        }
        Ok(())
    }
}

/// Hit probabilities below this floor are clipped to zero (the cliff).
pub const PROBABILITY_FLOOR: f64 = 0.02;

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl VerifEnv for SyntheticEnv {
    fn unit_name(&self) -> &str {
        "synthetic"
    }

    fn registry(&self) -> &ParamRegistry {
        &self.registry
    }

    fn coverage_model(&self) -> &CoverageModel {
        &self.model
    }

    fn stock_library(&self) -> &TemplateLibrary {
        &self.library
    }

    fn simulate_seeded(
        &self,
        resolved: &ResolvedParams,
        sampler_seed: u64,
    ) -> Result<CoverageVector, EnvError> {
        let mut xs = Vec::with_capacity(self.config.relevant_params);
        let mut cov = CoverageVector::empty(self.model.len());
        self.simulate_into(resolved, sampler_seed, &mut xs, &mut cov)?;
        Ok(cov)
    }

    fn simulate_batch(
        &self,
        resolved: &ResolvedParams,
        seeds: &[u64],
        scratch: &mut SimScratch,
    ) -> Result<Vec<CoverageVector>, EnvError> {
        // No stimulus program to stage — the batch win is reusing the knob
        // buffer and the recycled coverage vectors.
        let mut out = Vec::with_capacity(seeds.len());
        for &seed in seeds {
            let mut cov = scratch.take_cov(self.model.len());
            self.simulate_into(resolved, seed, &mut scratch.knob_xs, &mut cov)?;
            out.push(cov);
        }
        Ok(out)
    }

    fn simulate_batch_plane(
        &self,
        resolved: &ResolvedParams,
        seeds: &[u64],
        scratch: &mut SimScratch,
    ) -> Result<(), EnvError> {
        let SimScratch { knob_xs, plane, .. } = scratch;
        plane.begin(self.model.len(), seeds.len());
        for (lane, &seed) in seeds.iter().enumerate() {
            self.simulate_into(resolved, seed, knob_xs, &mut plane.lane(lane))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shapes() {
        let env = SyntheticEnv::default();
        assert_eq!(env.coverage_model().len(), 8 + 8);
        assert_eq!(env.registry().len(), 4 + 6);
        assert!(env.stock_library().len() >= 3);
        assert_eq!(env.hidden_optimum().len(), 4);
        for o in env.hidden_optimum() {
            assert!((0.3..1.0).contains(o));
        }
    }

    #[test]
    fn thresholds_climb_with_depth() {
        let env = SyntheticEnv::default();
        for k in 1..8 {
            assert!(env.threshold(k) < env.threshold(k + 1));
        }
        assert!((env.threshold(8) - 0.93).abs() < 1e-12);
    }

    #[test]
    fn quality_peaks_at_hidden_optimum() {
        let env = SyntheticEnv::default();
        let o = env.hidden_optimum().to_vec();
        assert!((env.quality(&o) - 1.0).abs() < 1e-12);
        let far: Vec<f64> = o.iter().map(|v| 1.0 - v).collect();
        assert!(env.quality(&far) < 1.0);
    }

    #[test]
    fn default_traffic_misses_deep_family() {
        let env = SyntheticEnv::default();
        let smoke = env.stock_library().by_name("syn_smoke").unwrap().1.clone();
        let resolved = env.registry().resolve(&smoke).unwrap();
        let deep = env.coverage_model().id("fam_08").unwrap();
        let shallow = env.coverage_model().id("fam_01").unwrap();
        let mut deep_hits = 0;
        let mut shallow_hits = 0;
        for s in 0..300 {
            let cov = env.simulate_resolved(&resolved, "smoke", s).unwrap();
            deep_hits += u64::from(cov.get(deep));
            shallow_hits += u64::from(cov.get(shallow));
        }
        assert_eq!(deep_hits, 0, "deep family reachable by defaults");
        assert!(shallow_hits > 0, "shallow family should have evidence");
    }

    #[test]
    fn oracle_template_hits_deep_family() {
        // Build a template whose knob weights concentrate on the subrange
        // containing each hidden-optimum coordinate.
        let env = SyntheticEnv::default();
        let sub = |lo, hi| Value::SubRange { lo, hi };
        let mut b = TestTemplate::builder("oracle");
        for (i, &o) in env.hidden_optimum().iter().enumerate() {
            let q = ((o * 100.0) as i64 / 25).min(3);
            let quarters = [(0, 25), (25, 50), (50, 75), (75, 100)];
            b = b
                .weights(
                    knob_name(i),
                    quarters
                        .iter()
                        .enumerate()
                        .map(|(j, &(lo, hi))| (sub(lo, hi), u32::from(j as i64 == q) * 100)),
                )
                .unwrap();
        }
        let oracle = b.build();
        env.registry().validate(&oracle).unwrap();
        let resolved = env.registry().resolve(&oracle).unwrap();
        let deep = env.coverage_model().id("fam_08").unwrap();
        let mut hits = 0;
        for s in 0..300 {
            let cov = env.simulate_resolved(&resolved, "oracle", s).unwrap();
            hits += u64::from(cov.get(deep));
        }
        assert!(hits > 10, "oracle template should reach fam_08: {hits}/300");
    }

    #[test]
    fn hardness_controls_difficulty() {
        let soft = SyntheticEnv::new(SyntheticConfig {
            hardness: 10.0,
            ..SyntheticConfig::default()
        });
        let hard = SyntheticEnv::default();
        let rate = |env: &SyntheticEnv| {
            let t = env.stock_library().by_name("syn_sweep").unwrap().1.clone();
            let resolved = env.registry().resolve(&t).unwrap();
            let deep = env.coverage_model().id("fam_08").unwrap();
            (0..400)
                .filter(|&s| {
                    env.simulate_resolved(&resolved, "sweep", s)
                        .unwrap()
                        .get(deep)
                })
                .count()
        };
        assert!(
            rate(&soft) > rate(&hard),
            "lower hardness must make the deep family easier"
        );
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let env = SyntheticEnv::default();
        let t = env.stock_library().get(1).unwrap().clone();
        assert_eq!(env.simulate(&t, 5).unwrap(), env.simulate(&t, 5).unwrap());
        let other = SyntheticEnv::new(SyntheticConfig {
            seed: 999,
            ..SyntheticConfig::default()
        });
        assert_ne!(env.hidden_optimum(), other.hidden_optimum());
    }

    #[test]
    fn full_flow_closes_coverage_on_synthetic_unit() {
        use ascdg_coverage::EventFamily;
        let env = SyntheticEnv::default();
        // The family must be discoverable by stem so the flow's
        // `run_for_family("fam_", ...)` entry point works.
        let fams = EventFamily::discover(env.coverage_model());
        assert!(fams.iter().any(|f| f.stem() == "fam_"));
    }
}
