//! Error type for simulation environments.

use std::fmt;

use ascdg_stimgen::StimGenError;
use ascdg_template::TemplateError;

/// Errors produced while simulating a test-template on a unit.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EnvError {
    /// The template failed validation against the environment's registry.
    Template(TemplateError),
    /// Stimulus generation failed (wrong parameter kind, unknown name).
    StimGen(StimGenError),
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvError::Template(e) => write!(f, "template rejected: {e}"),
            EnvError::StimGen(e) => write!(f, "stimulus generation failed: {e}"),
        }
    }
}

impl std::error::Error for EnvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EnvError::Template(e) => Some(e),
            EnvError::StimGen(e) => Some(e),
        }
    }
}

impl From<TemplateError> for EnvError {
    fn from(e: TemplateError) -> Self {
        EnvError::Template(e)
    }
}

impl From<StimGenError> for EnvError {
    fn from(e: StimGenError) -> Self {
        EnvError::StimGen(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sources() {
        let e = EnvError::from(TemplateError::UnknownParam("X".into()));
        assert!(e.to_string().contains("`X`"));
        assert!(std::error::Error::source(&e).is_some());
        let e = EnvError::from(StimGenError::UnknownParam("Y".into()));
        assert!(e.to_string().contains("`Y`"));
    }
}
