//! The I/O unit: a DMA engine with a CRC checker.
//!
//! This unit reproduces the coverage structure of the paper's Fig. 3: a
//! monotone burst-length family `crc_004 .. crc_096`. The model:
//!
//! * a sequential DMA engine processes [`IoCommand`]s in order;
//! * the CRC engine accumulates a *span* of consecutive data beats — a span
//!   continues across commands only when they target the same channel with
//!   an inter-command gap of at most [`CHAIN_GAP`] cycles and CRC stays
//!   enabled;
//! * event `crc_k` fires when a span reaches `k` beats;
//! * an injected error aborts the span mid-payload; the span buffer holds
//!   [`CRC_BUFFER_BEATS`] beats and flushes when full; background machine
//!   activity (interrupt traffic, response timeouts) flushes a live span
//!   with probability [`FLUSH_HAZARD`] per beat, which is what makes very
//!   long spans intrinsically hard.
//!
//! The unit also exposes a second closable family: the response queue.
//! Every command holds one of `CreditInit` response-queue slots until its
//! completion returns after `RespDelay` cycles; event `qdepth_k` fires at
//! `k` simultaneously held slots (capped by [`RESP_QUEUE_MAX`]). Deep
//! queue occupancy needs tight gaps, slow responses and a deep queue —
//! a different relevant-parameter set than the CRC family, which is what
//! makes the unit a good two-target demonstration.
//!
//! Under the environment defaults almost all packets are 1-3 beats and gaps
//! are wide, so `crc_016` and above are essentially unreachable — exactly
//! the "no positive evidence" starting point of the paper. The stock
//! library contains a handful of burst-oriented templates whose parameters
//! (packet-length weights, gap range, channel focus, CRC enable, error
//! rate) are the ones the coarse-grained search should discover.

use ascdg_coverage::{CoverageModel, CoverageSink, CoverageVector};
use ascdg_stimgen::{IoCommand, IoProgram, ParamSampler};
use ascdg_template::{
    ParamDef, ParamRegistry, ResolvedParams, TemplateLibrary, TestTemplate, Value,
};

use crate::{EnvError, SimScratch, VerifEnv};

/// Maximum inter-command gap (cycles) across which a CRC span survives.
pub const CHAIN_GAP: u32 = 1;

/// Capacity of the CRC span buffer in beats; the span flushes when full.
pub const CRC_BUFFER_BEATS: u32 = 128;

/// Per-beat probability that background activity flushes a live span.
pub const FLUSH_HAZARD: f64 = 0.012;

/// The CRC burst-length thresholds (the `crc_*` event family).
pub const CRC_THRESHOLDS: [u32; 6] = [4, 8, 16, 32, 64, 96];

/// Maximum depth of the response queue (the `qdepth_*` family size).
pub const RESP_QUEUE_MAX: usize = 8;

/// The I/O-unit verification environment.
///
/// # Examples
///
/// ```
/// use ascdg_duv::{io_unit::IoEnv, VerifEnv};
///
/// let env = IoEnv::new();
/// assert_eq!(env.unit_name(), "io_unit");
/// assert!(env.coverage_model().id("crc_096").is_ok());
/// assert!(env.stock_library().len() >= 12);
/// ```
#[derive(Debug, Clone)]
pub struct IoEnv {
    registry: ParamRegistry,
    model: CoverageModel,
    library: TemplateLibrary,
    /// `qdepth_N` event ids indexed by depth-1 (hot-path cache).
    qdepth_ids: Vec<ascdg_coverage::EventId>,
}

impl Default for IoEnv {
    fn default() -> Self {
        IoEnv::new()
    }
}

/// Builds the event list: the CRC family plus the unit's other events.
fn event_names() -> Vec<String> {
    let mut names: Vec<String> = CRC_THRESHOLDS
        .iter()
        .map(|k| format!("crc_{k:03}"))
        .collect();
    names.extend((1..=RESP_QUEUE_MAX).map(|k| format!("qdepth_{k}")));
    names.extend(
        [
            "ch0_active",
            "ch1_active",
            "ch2_active",
            "ch3_active",
            "all_channels_used",
            "rd_cmd",
            "wr_cmd",
            "err_injected",
            "crc_err_abort",
            "crc_disabled_cmd",
            "gap_zero_b2b",
            "long_gap",
            "intr_raised",
            "intr_burst2",
            "buffer_flush_full",
            "chain2",
            "chain4",
            "chain8",
            "max_beats_cmd",
            "unaligned_access",
            "resp_queue_full",
        ]
        .into_iter()
        .map(str::to_owned),
    );
    names
}

fn registry() -> ParamRegistry {
    let sub = |lo, hi| Value::SubRange { lo, hi };
    let mut reg = ParamRegistry::new();
    let defs = [
        // --- parameters relevant to the CRC family ---
        ParamDef::range("PktCount", 4, 48).unwrap(),
        // The DMA engine caps single payloads below 16 beats, so every long
        // CRC span must be assembled from *chained* back-to-back packets —
        // that multiplicative structure is what makes the deep crc_* events
        // hard (and makes the gap/channel/error parameters matter).
        ParamDef::weights(
            "PktLen",
            [(sub(1, 4), 100u32), (sub(4, 8), 1), (sub(8, 16), 0)],
        )
        .unwrap(),
        ParamDef::range("Gap", 0, 32).unwrap(),
        ParamDef::weights(
            "Channel",
            [
                (Value::Int(0), 25u32),
                (Value::Int(1), 25),
                (Value::Int(2), 25),
                (Value::Int(3), 25),
            ],
        )
        .unwrap(),
        ParamDef::weights("CrcEn", [("on", 80u32), ("off", 20)]).unwrap(),
        ParamDef::range("ErrPct", 0, 30).unwrap(),
        // Completion latency: defaults are fast responses; the slow
        // subranges exist in the domain but carry no default weight, so
        // deep response queues need a template that reweights them.
        ParamDef::weights(
            "RespDelay",
            [
                (sub(1, 8), 85u32),
                (sub(8, 16), 15),
                (sub(16, 28), 0),
                (sub(28, 40), 0),
            ],
        )
        .unwrap(),
        // --- parameters that drive the unit's other events ---
        ParamDef::range("ReadPct", 0, 100).unwrap(),
        ParamDef::range("IntrPct", 0, 20).unwrap(),
        ParamDef::weights("AddrAlign", [("aligned", 70u32), ("unaligned", 30)]).unwrap(),
        // --- plausible environment knobs irrelevant to this unit's events ---
        ParamDef::range("QDepth", 1, 8).unwrap(),
        ParamDef::weights(
            "PrioCh",
            [
                (Value::Int(0), 40u32),
                (Value::Int(1), 30),
                (Value::Int(2), 20),
                (Value::Int(3), 10),
            ],
        )
        .unwrap(),
        ParamDef::range("MmioPct", 0, 10).unwrap(),
        ParamDef::weights("DmaMode", [("contig", 50u32), ("scatter", 50)]).unwrap(),
        ParamDef::range("TlpSize", 1, 9).unwrap(),
        ParamDef::weights("OrderStrict", [("on", 50u32), ("off", 50)]).unwrap(),
        ParamDef::weights("PwrSave", [("on", 10u32), ("off", 90)]).unwrap(),
        ParamDef::range("RetryPct", 0, 10).unwrap(),
        ParamDef::range("FlushPct", 0, 5).unwrap(),
        ParamDef::range("CreditInit", 4, 17).unwrap(),
        ParamDef::weights("VcMap", [("vc0", 50u32), ("vc1", 50)]).unwrap(),
        ParamDef::weights("ParityEn", [("on", 90u32), ("off", 10)]).unwrap(),
    ];
    for d in defs {
        reg.define(d).expect("unique parameter names");
    }
    reg
}

fn stock_library() -> TemplateLibrary {
    let sub = |lo, hi| Value::SubRange { lo, hi };
    let t = TestTemplate::builder;
    [
        // Generic regression templates, unrelated to the CRC family.
        t("io_smoke").build(),
        t("io_reads").range("ReadPct", 80, 100).unwrap().build(),
        t("io_writes").range("ReadPct", 0, 20).unwrap().build(),
        t("io_interrupt_storm")
            .range("IntrPct", 12, 20)
            .unwrap()
            .build(),
        t("io_mmio_heavy").range("MmioPct", 6, 10).unwrap().build(),
        t("io_power_save")
            .weights("PwrSave", [("on", 90u32), ("off", 10)])
            .unwrap()
            .build(),
        t("io_retry_stress")
            .range("RetryPct", 5, 10)
            .unwrap()
            .build(),
        t("io_scatter")
            .weights("DmaMode", [("scatter", 100u32)])
            .unwrap()
            .range("TlpSize", 4, 9)
            .unwrap()
            .build(),
        t("io_unaligned")
            .weights("AddrAlign", [("unaligned", 100u32)])
            .unwrap()
            .build(),
        t("io_crc_off")
            .weights("CrcEn", [("off", 100u32)])
            .unwrap()
            .build(),
        // Burst-oriented templates: these carry the parameters that matter
        // for the CRC family, with increasing aggressiveness.
        t("io_short_bursts")
            .weights("PktLen", [(sub(1, 4), 50u32), (sub(4, 8), 50)])
            .unwrap()
            .build(),
        t("io_medium_bursts")
            .weights(
                "PktLen",
                [(sub(1, 4), 30u32), (sub(4, 8), 60), (sub(8, 16), 10)],
            )
            .unwrap()
            .weights("CrcEn", [("on", 100u32)])
            .unwrap()
            .build(),
        t("io_back_to_back")
            .range("Gap", 0, 4)
            .unwrap()
            .weights("Channel", [(Value::Int(1), 100u32)])
            .unwrap()
            .build(),
        t("io_burst_stress")
            .weights(
                "PktLen",
                [(sub(1, 4), 25u32), (sub(4, 8), 60), (sub(8, 16), 15)],
            )
            .unwrap()
            .range("Gap", 0, 8)
            .unwrap()
            .weights("Channel", [(Value::Int(2), 70u32), (Value::Int(3), 30)])
            .unwrap()
            .weights("CrcEn", [("on", 100u32)])
            .unwrap()
            .range("ErrPct", 0, 10)
            .unwrap()
            .range("PktCount", 16, 48)
            .unwrap()
            .build(),
        t("io_error_recovery")
            .range("ErrPct", 15, 30)
            .unwrap()
            .weights("PktLen", [(sub(1, 4), 50u32), (sub(4, 8), 50)])
            .unwrap()
            .build(),
        t("io_resp_stress")
            .range("Gap", 1, 8)
            .unwrap()
            .weights(
                "RespDelay",
                [(sub(8, 16), 50u32), (sub(16, 28), 40), (sub(28, 40), 10)],
            )
            .unwrap()
            .range("CreditInit", 8, 17)
            .unwrap()
            .range("PktCount", 16, 48)
            .unwrap()
            .build(),
        t("io_ch_sweep")
            .weights(
                "Channel",
                [
                    (Value::Int(0), 10u32),
                    (Value::Int(1), 20),
                    (Value::Int(2), 30),
                    (Value::Int(3), 40),
                ],
            )
            .unwrap()
            .build(),
    ]
    .into_iter()
    .collect()
}

impl IoEnv {
    /// Builds the environment (registry, stock library, coverage model).
    #[must_use]
    pub fn new() -> Self {
        let model =
            CoverageModel::from_names("io_unit", event_names()).expect("event names are unique");
        let qdepth_ids = (1..=RESP_QUEUE_MAX)
            .map(|k| model.id(&format!("qdepth_{k}")).expect("family event"))
            .collect();
        IoEnv {
            registry: registry(),
            model,
            library: stock_library(),
            qdepth_ids,
        }
    }

    /// Generates the stimulus program for one test-instance into `out` (a
    /// cleared scratch buffer on the batch path, a fresh `Vec` otherwise).
    fn generate_into(
        &self,
        sampler: &mut ParamSampler<'_>,
        out: &mut Vec<IoCommand>,
    ) -> Result<(), EnvError> {
        let count = sampler.sample_int("PktCount")? as usize;
        let err_rate = sampler.rate("ErrPct")?;
        let intr_rate = sampler.rate("IntrPct")?;
        let read_rate = sampler.rate("ReadPct")?;
        out.reserve(count);
        for _ in 0..count {
            out.push(IoCommand {
                channel: sampler.sample_int("Channel")? as u8,
                payload_beats: sampler.sample_int("PktLen")? as u32,
                gap: sampler.sample_int("Gap")? as u32,
                resp_delay: sampler.sample_int("RespDelay")? as u32,
                crc_enable: sampler.sample_choice("CrcEn")? == "on",
                inject_error: sampler.chance(err_rate),
                is_read: sampler.chance(read_rate),
                raise_intr: sampler.chance(intr_rate),
            });
        }
        Ok(())
    }

    /// Runs the DMA/CRC model over a program, collecting coverage.
    ///
    /// Exposed for tests and for anyone who wants to drive the unit with a
    /// hand-written program.
    #[must_use]
    pub fn run_program(
        &self,
        program: &IoProgram,
        sampler: &mut ParamSampler<'_>,
        unaligned: bool,
        resp_queue_cap: usize,
    ) -> CoverageVector {
        let mut cov = CoverageVector::empty(self.model.len());
        let mut responses = crate::kernel::DelayLine::new();
        self.run_program_into(
            program,
            sampler,
            unaligned,
            resp_queue_cap,
            &mut responses,
            &mut cov,
        );
        cov
    }

    /// [`IoEnv::run_program`] over a caller-provided response queue and a
    /// zeroed coverage sink (a `CoverageVector` or a bit-plane lane) — the
    /// batch kernels' entry point. `responses` is cleared (never trusted)
    /// before use.
    fn run_program_into<S: CoverageSink>(
        &self,
        program: &[IoCommand],
        sampler: &mut ParamSampler<'_>,
        unaligned: bool,
        resp_queue_cap: usize,
        responses: &mut crate::kernel::DelayLine<()>,
        cov: &mut S,
    ) {
        let hit = |name: &str, cov: &mut S| {
            cov.hit(self.model.id(name).expect("known event"));
        };

        let mut span: u32 = 0;
        let mut chain_pkts: u32 = 0;
        let mut prev: Option<IoCommand> = None;
        let mut prev_intr = false;
        let mut channels_used = [false; 4];
        // Response-queue model: every command holds a slot from issue
        // until its completion returns.
        let resp_queue_cap = resp_queue_cap.max(1);
        responses.clear();
        let mut cycle: u64 = 0;

        if unaligned {
            hit("unaligned_access", cov);
        }

        for cmd in program {
            // Issue timing and response-queue occupancy.
            responses.drain_ready_with(cycle, |()| {});
            if responses.len() == resp_queue_cap {
                hit("resp_queue_full", cov);
                let next = responses.next_ready().expect("slots are held");
                cycle = cycle.max(next);
                responses.drain_ready_with(cycle, |()| {});
            }
            responses.insert((), cycle + u64::from(cmd.resp_delay));
            let depth = responses.len().min(RESP_QUEUE_MAX);
            cov.hit(self.qdepth_ids[depth - 1]);
            cycle += 1 + u64::from(cmd.payload_beats) + u64::from(cmd.gap);

            let ch = (cmd.channel & 3) as usize;
            channels_used[ch] = true;
            hit(
                ["ch0_active", "ch1_active", "ch2_active", "ch3_active"][ch],
                cov,
            );
            hit(if cmd.is_read { "rd_cmd" } else { "wr_cmd" }, cov);
            if cmd.gap == 0 {
                hit("gap_zero_b2b", cov);
            }
            if cmd.gap >= 24 {
                hit("long_gap", cov);
            }
            if cmd.payload_beats >= 12 {
                hit("max_beats_cmd", cov);
            }
            if cmd.raise_intr {
                hit("intr_raised", cov);
                if prev_intr {
                    hit("intr_burst2", cov);
                }
            }
            prev_intr = cmd.raise_intr;

            // CRC span bookkeeping.
            let continues = matches!(
                prev,
                Some(p) if p.channel == cmd.channel
                    && p.gap <= CHAIN_GAP
                    && p.crc_enable
                    && !p.inject_error
            ) && cmd.crc_enable;
            if !continues {
                span = 0;
                chain_pkts = 0;
            }
            if cmd.crc_enable {
                chain_pkts += 1;
                if chain_pkts >= 2 {
                    hit("chain2", cov);
                }
                if chain_pkts >= 4 {
                    hit("chain4", cov);
                }
                if chain_pkts >= 8 {
                    hit("chain8", cov);
                }
                // Beats stream through the CRC engine one at a time; an
                // injected error aborts mid-payload and background machine
                // activity can flush the span at any beat.
                let beats = if cmd.inject_error {
                    cmd.payload_beats / 2
                } else {
                    cmd.payload_beats
                };
                let mut flushed = false;
                for _ in 0..beats {
                    if sampler.chance(FLUSH_HAZARD) {
                        flushed = true;
                        break;
                    }
                    span += 1;
                    for &k in &CRC_THRESHOLDS {
                        if span == k {
                            hit(&format!("crc_{k:03}"), cov);
                        }
                    }
                    if span >= CRC_BUFFER_BEATS {
                        hit("buffer_flush_full", cov);
                        flushed = true;
                        break;
                    }
                }
                if cmd.inject_error {
                    hit("err_injected", cov);
                    hit("crc_err_abort", cov);
                    flushed = true;
                }
                if flushed {
                    span = 0;
                    chain_pkts = 0;
                }
            } else {
                hit("crc_disabled_cmd", cov);
                if cmd.inject_error {
                    hit("err_injected", cov);
                }
            }
            prev = Some(*cmd);
        }
        if channels_used.iter().all(|&u| u) {
            hit("all_channels_used", cov);
        }
    }
}

impl VerifEnv for IoEnv {
    fn unit_name(&self) -> &str {
        "io_unit"
    }

    fn registry(&self) -> &ParamRegistry {
        &self.registry
    }

    fn coverage_model(&self) -> &CoverageModel {
        &self.model
    }

    fn stock_library(&self) -> &TemplateLibrary {
        &self.library
    }

    fn simulate_seeded(
        &self,
        resolved: &ResolvedParams,
        sampler_seed: u64,
    ) -> Result<CoverageVector, EnvError> {
        let mut sampler = ParamSampler::new(resolved, sampler_seed);
        let unaligned = sampler.sample_choice("AddrAlign")? == "unaligned";
        let resp_queue_cap = sampler.sample_int("CreditInit")? as usize;
        let mut program = Vec::new();
        self.generate_into(&mut sampler, &mut program)?;
        Ok(self.run_program(&program, &mut sampler, unaligned, resp_queue_cap))
    }

    fn simulate_batch(
        &self,
        resolved: &ResolvedParams,
        seeds: &[u64],
        scratch: &mut SimScratch,
    ) -> Result<Vec<CoverageVector>, EnvError> {
        // The sampler is consumed *during* the run phase (per-beat flush
        // hazard), so sims interleave generate/run per seed — the win is
        // reusing the command buffer and the response delay line across the
        // whole chunk.
        let mut out = Vec::with_capacity(seeds.len());
        for &seed in seeds {
            let mut sampler = ParamSampler::new(resolved, seed);
            let unaligned = sampler.sample_choice("AddrAlign")? == "unaligned";
            let resp_queue_cap = sampler.sample_int("CreditInit")? as usize;
            scratch.io_cmds.clear();
            self.generate_into(&mut sampler, &mut scratch.io_cmds)?;
            let mut cov = scratch.take_cov(self.model.len());
            self.run_program_into(
                &scratch.io_cmds,
                &mut sampler,
                unaligned,
                resp_queue_cap,
                &mut scratch.io_responses,
                &mut cov,
            );
            out.push(cov);
        }
        Ok(out)
    }

    fn simulate_batch_plane(
        &self,
        resolved: &ResolvedParams,
        seeds: &[u64],
        scratch: &mut SimScratch,
    ) -> Result<(), EnvError> {
        // Same interleaved kernel as `simulate_batch`, but each sim's
        // cycle model records straight into its plane lane.
        let SimScratch {
            io_cmds,
            io_responses,
            plane,
            ..
        } = scratch;
        plane.begin(self.model.len(), seeds.len());
        for (lane, &seed) in seeds.iter().enumerate() {
            let mut sampler = ParamSampler::new(resolved, seed);
            let unaligned = sampler.sample_choice("AddrAlign")? == "unaligned";
            let resp_queue_cap = sampler.sample_int("CreditInit")? as usize;
            io_cmds.clear();
            self.generate_into(&mut sampler, io_cmds)?;
            self.run_program_into(
                io_cmds,
                &mut sampler,
                unaligned,
                resp_queue_cap,
                io_responses,
                &mut plane.lane(lane),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascdg_coverage::{CoverageRepository, TemplateId};

    fn env() -> IoEnv {
        IoEnv::new()
    }

    fn rate_of(env: &IoEnv, template: &TestTemplate, event: &str, sims: u64) -> f64 {
        let resolved = env.registry().resolve(template).unwrap();
        let id = env.coverage_model().id(event).unwrap();
        let mut hits = 0u64;
        for s in 0..sims {
            let cov = env
                .simulate_resolved(&resolved, template.name(), s)
                .unwrap();
            if cov.get(id) {
                hits += 1;
            }
        }
        hits as f64 / sims as f64
    }

    #[test]
    fn stock_templates_validate() {
        let env = env();
        for (_, t) in env.stock_library().iter() {
            env.registry().validate(t).unwrap();
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let env = env();
        let t = env.stock_library().get(0).unwrap().clone();
        let a = env.simulate(&t, 7).unwrap();
        let b = env.simulate(&t, 7).unwrap();
        assert_eq!(a, b);
        let c = env.simulate(&t, 8).unwrap();
        // Different seeds almost surely differ in some event.
        assert_ne!(a, c);
    }

    #[test]
    fn default_template_rarely_reaches_long_spans() {
        let env = env();
        let smoke = env.stock_library().by_name("io_smoke").unwrap().1.clone();
        assert_eq!(rate_of(&env, &smoke, "crc_064", 300), 0.0);
        assert_eq!(rate_of(&env, &smoke, "crc_096", 300), 0.0);
    }

    #[test]
    fn burst_template_reaches_middle_spans() {
        let env = env();
        let burst = env
            .stock_library()
            .by_name("io_burst_stress")
            .unwrap()
            .1
            .clone();
        let r16 = rate_of(&env, &burst, "crc_016", 300);
        assert!(r16 > 0.05, "crc_016 rate {r16} too low for burst template");
    }

    #[test]
    fn crc_family_is_monotone() {
        // On any template, crc_k implies crc_j for j < k within a sim.
        let env = env();
        let burst = env
            .stock_library()
            .by_name("io_burst_stress")
            .unwrap()
            .1
            .clone();
        let resolved = env.registry().resolve(&burst).unwrap();
        let ids: Vec<_> = CRC_THRESHOLDS
            .iter()
            .map(|k| env.coverage_model().id(&format!("crc_{k:03}")).unwrap())
            .collect();
        for s in 0..200 {
            let cov = env
                .simulate_resolved(&resolved, "io_burst_stress", s)
                .unwrap();
            for w in ids.windows(2) {
                assert!(
                    cov.get(w[1]) <= cov.get(w[0]),
                    "family not monotone at seed {s}"
                );
            }
        }
    }

    #[test]
    fn handcrafted_program_hits_expected_events() {
        let env = env();
        let resolved = env
            .registry()
            .resolve(&TestTemplate::builder("manual").build())
            .unwrap();
        // Sampler only consumed for flush hazard; FLUSH_HAZARD misses are
        // probabilistic, so use a short span where survival is near-certain.
        let mut sampler = ParamSampler::new(&resolved, 42);
        let cmd = |ch, beats, gap| IoCommand {
            channel: ch,
            payload_beats: beats,
            gap,
            resp_delay: 2,
            crc_enable: true,
            inject_error: false,
            is_read: true,
            raise_intr: false,
        };
        let program = vec![cmd(0, 3, 0), cmd(0, 3, 5)];
        let cov = env.run_program(&program, &mut sampler, false, 16);
        let m = env.coverage_model();
        assert!(cov.get(m.id("crc_004").unwrap()), "chained 6 beats >= 4");
        assert!(cov.get(m.id("chain2").unwrap()));
        assert!(cov.get(m.id("gap_zero_b2b").unwrap()));
        assert!(cov.get(m.id("rd_cmd").unwrap()));
        assert!(!cov.get(m.id("wr_cmd").unwrap()));
        assert!(!cov.get(m.id("crc_008").unwrap()));
    }

    #[test]
    fn error_injection_aborts_span() {
        let env = env();
        let resolved = env
            .registry()
            .resolve(&TestTemplate::builder("manual").build())
            .unwrap();
        let mut sampler = ParamSampler::new(&resolved, 1);
        let mut cmd = IoCommand {
            channel: 0,
            payload_beats: 6,
            gap: 0,
            resp_delay: 2,
            crc_enable: true,
            inject_error: true,
            is_read: false,
            raise_intr: false,
        };
        let program = vec![cmd, {
            cmd.inject_error = false;
            cmd
        }];
        let cov = env.run_program(&program, &mut sampler, false, 16);
        let m = env.coverage_model();
        assert!(cov.get(m.id("err_injected").unwrap()));
        assert!(cov.get(m.id("crc_err_abort").unwrap()));
        // First command contributes only 3 beats then aborts; second starts
        // a fresh span of 6: crc_008 must not fire.
        assert!(!cov.get(m.id("crc_008").unwrap()));
    }

    #[test]
    fn before_cdg_regression_shape() {
        // Simulating the stock library must leave the deep family members
        // uncovered while covering the shallow ones — the paper's
        // "Before CDG" column shape.
        let env = env();
        let repo = CoverageRepository::new(env.coverage_model().clone());
        for (idx, t) in env.stock_library().iter() {
            let resolved = env.registry().resolve(t).unwrap();
            for s in 0..120 {
                let cov = env.simulate_resolved(&resolved, t.name(), s).unwrap();
                repo.record(TemplateId(idx as u32), &cov);
            }
        }
        let m = env.coverage_model();
        let rate = |name: &str| repo.global_stats(m.id(name).unwrap()).rate();
        assert!(rate("crc_004") > 0.01, "crc_004 {}", rate("crc_004"));
        assert!(rate("crc_008") > rate("crc_016"));
        assert_eq!(rate("crc_096"), 0.0, "crc_096 must start uncovered");
        assert!(rate("rd_cmd") > 0.9);
    }
    #[test]
    fn crc_buffer_flushes_at_capacity() {
        let env = env();
        let resolved = env
            .registry()
            .resolve(&TestTemplate::builder("manual").build())
            .unwrap();
        // Seed chosen so FLUSH_HAZARD never fires within the first run of
        // beats (deterministic given the fixed sampler stream is unlikely
        // to abort 300+ beats; if it does, the buffer_flush_full assertion
        // below would fail loudly rather than silently pass).
        let mut sampler = ParamSampler::new(&resolved, 1234);
        let cmd = |beats| IoCommand {
            channel: 0,
            payload_beats: beats,
            gap: 0,
            resp_delay: 2,
            crc_enable: true,
            inject_error: false,
            is_read: true,
            raise_intr: false,
        };
        // 40 chained packets x 15 beats: must hit the 128-beat cap at
        // least once despite flush hazards.
        let program: IoProgram = (0..40).map(|_| cmd(15)).collect();
        let cov = env.run_program(&program, &mut sampler, false, 16);
        let m = env.coverage_model();
        assert!(cov.get(m.id("buffer_flush_full").unwrap()));
        assert!(cov.get(m.id("chain8").unwrap()));
    }

    #[test]
    fn channel_switch_breaks_chain() {
        let env = env();
        let resolved = env
            .registry()
            .resolve(&TestTemplate::builder("manual").build())
            .unwrap();
        let mut sampler = ParamSampler::new(&resolved, 3);
        let cmd = |ch, beats| IoCommand {
            channel: ch,
            payload_beats: beats,
            gap: 0,
            resp_delay: 2,
            crc_enable: true,
            inject_error: false,
            is_read: false,
            raise_intr: false,
        };
        // Alternating channels: spans never accumulate across commands.
        let program: IoProgram = (0..10).map(|i| cmd(i % 2, 3)).collect();
        let cov = env.run_program(&program, &mut sampler, false, 16);
        let m = env.coverage_model();
        assert!(!cov.get(m.id("crc_004").unwrap()), "3-beat spans only");
        assert!(!cov.get(m.id("chain2").unwrap()));
        assert!(cov.get(m.id("ch0_active").unwrap()));
        assert!(cov.get(m.id("ch1_active").unwrap()));
    }

    #[test]
    fn wide_gap_breaks_chain() {
        let env = env();
        let resolved = env
            .registry()
            .resolve(&TestTemplate::builder("manual").build())
            .unwrap();
        let mut sampler = ParamSampler::new(&resolved, 4);
        let cmd = |gap| IoCommand {
            channel: 2,
            payload_beats: 3,
            gap,
            resp_delay: 2,
            crc_enable: true,
            inject_error: false,
            is_read: true,
            raise_intr: false,
        };
        // Gap 2 exceeds CHAIN_GAP=1: no chaining.
        let program: IoProgram = vec![cmd(2), cmd(2), cmd(2)];
        let cov = env.run_program(&program, &mut sampler, false, 16);
        assert!(!cov.get(env.coverage_model().id("crc_004").unwrap()));
        // Gap 1 chains.
        let mut sampler = ParamSampler::new(&resolved, 4);
        let program: IoProgram = vec![cmd(1), cmd(1)];
        let cov = env.run_program(&program, &mut sampler, false, 16);
        assert!(cov.get(env.coverage_model().id("crc_004").unwrap()));
    }

    #[test]
    fn interrupt_burst_detection() {
        let env = env();
        let resolved = env
            .registry()
            .resolve(&TestTemplate::builder("manual").build())
            .unwrap();
        let mut sampler = ParamSampler::new(&resolved, 5);
        let cmd = |intr| IoCommand {
            channel: 0,
            payload_beats: 1,
            gap: 10,
            resp_delay: 2,
            crc_enable: false,
            inject_error: false,
            is_read: true,
            raise_intr: intr,
        };
        let cov = env.run_program(
            &vec![cmd(true), cmd(false), cmd(true)],
            &mut sampler,
            false,
            16,
        );
        let m = env.coverage_model();
        assert!(cov.get(m.id("intr_raised").unwrap()));
        assert!(!cov.get(m.id("intr_burst2").unwrap()), "non-consecutive");
        let mut sampler = ParamSampler::new(&resolved, 5);
        let cov = env.run_program(&vec![cmd(true), cmd(true)], &mut sampler, false, 16);
        assert!(cov.get(m.id("intr_burst2").unwrap()));
    }

    #[test]
    fn all_channels_event_requires_all_four() {
        let env = env();
        let resolved = env
            .registry()
            .resolve(&TestTemplate::builder("manual").build())
            .unwrap();
        let mut sampler = ParamSampler::new(&resolved, 6);
        let cmd = |ch| IoCommand {
            channel: ch,
            payload_beats: 1,
            gap: 5,
            resp_delay: 2,
            crc_enable: false,
            inject_error: false,
            is_read: true,
            raise_intr: false,
        };
        let m = env.coverage_model();
        let three: IoProgram = vec![cmd(0), cmd(1), cmd(2)];
        let cov = env.run_program(&three, &mut sampler, false, 16);
        assert!(!cov.get(m.id("all_channels_used").unwrap()));
        let mut sampler = ParamSampler::new(&resolved, 6);
        let four: IoProgram = vec![cmd(0), cmd(1), cmd(2), cmd(3)];
        let cov = env.run_program(&four, &mut sampler, false, 16);
        assert!(cov.get(m.id("all_channels_used").unwrap()));
    }
    #[test]
    fn qdepth_family_counts_outstanding_responses() {
        let env = env();
        let resolved = env
            .registry()
            .resolve(&TestTemplate::builder("manual").build())
            .unwrap();
        let mut sampler = ParamSampler::new(&resolved, 9);
        // Back-to-back 1-beat commands with 40-cycle responses: the queue
        // fills one slot per command.
        let cmd = IoCommand {
            channel: 0,
            payload_beats: 1,
            gap: 0,
            resp_delay: 40,
            crc_enable: false,
            inject_error: false,
            is_read: true,
            raise_intr: false,
        };
        let program: IoProgram = vec![cmd; 5];
        let cov = env.run_program(&program, &mut sampler, false, 16);
        let m = env.coverage_model();
        assert!(cov.get(m.id("qdepth_5").unwrap()));
        assert!(!cov.get(m.id("qdepth_6").unwrap()));
        assert!(!cov.get(m.id("resp_queue_full").unwrap()));
    }

    #[test]
    fn resp_queue_capacity_stalls_the_engine() {
        let env = env();
        let resolved = env
            .registry()
            .resolve(&TestTemplate::builder("manual").build())
            .unwrap();
        let mut sampler = ParamSampler::new(&resolved, 10);
        let cmd = IoCommand {
            channel: 0,
            payload_beats: 1,
            gap: 0,
            resp_delay: 100,
            crc_enable: false,
            inject_error: false,
            is_read: false,
            raise_intr: false,
        };
        let program: IoProgram = vec![cmd; 6];
        // Capacity 3: the fourth command must stall and the depth never
        // exceeds 3.
        let cov = env.run_program(&program, &mut sampler, false, 3);
        let m = env.coverage_model();
        assert!(cov.get(m.id("resp_queue_full").unwrap()));
        assert!(cov.get(m.id("qdepth_3").unwrap()));
        assert!(!cov.get(m.id("qdepth_4").unwrap()));
    }

    #[test]
    fn qdepth_family_shape_matches_cdg_expectations() {
        // Defaults keep the deep queue uncovered; the resp-stress stock
        // template reaches the middle; a hand-tuned template reaches 8.
        let env = env();
        let m = env.coverage_model();
        let deep = m.id("qdepth_7").unwrap();
        let rate = |t: &TestTemplate, sims: u64| {
            let resolved = env.registry().resolve(t).unwrap();
            (0..sims)
                .filter(|&s| {
                    env.simulate_resolved(&resolved, t.name(), s)
                        .unwrap()
                        .get(deep)
                })
                .count() as f64
                / sims as f64
        };
        let smoke = env.stock_library().by_name("io_smoke").unwrap().1.clone();
        assert_eq!(rate(&smoke, 300), 0.0, "qdepth_7 reachable by defaults");
        let tuned = TestTemplate::builder("deep_queue")
            .range("Gap", 0, 2)
            .unwrap()
            .weights("RespDelay", [(Value::SubRange { lo: 28, hi: 40 }, 100u32)])
            .unwrap()
            .range("CreditInit", 12, 17)
            .unwrap()
            .range("PktCount", 32, 48)
            .unwrap()
            .weights("PktLen", [(Value::SubRange { lo: 1, hi: 4 }, 100u32)])
            .unwrap()
            .build();
        assert!(
            rate(&tuned, 300) > 0.2,
            "tuned template should fill the queue"
        );
    }
}
