//! Small cycle-based simulation building blocks shared by the units.
//!
//! The units are modeled at transaction/cycle granularity: each keeps a
//! current cycle counter and advances hardware state with these primitives —
//! a bounded [`Fifo`], a latency [`DelayLine`] and a [`CreditPool`].

use std::collections::VecDeque;

/// A bounded FIFO queue, as used for request and fetch buffers.
///
/// # Examples
///
/// ```
/// use ascdg_duv::kernel::Fifo;
///
/// let mut q = Fifo::new(2);
/// assert!(q.push(1).is_ok());
/// assert!(q.push(2).is_ok());
/// assert!(q.push(3).is_err(), "full queue rejects");
/// assert_eq!(q.pop(), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    items: VecDeque<T>,
    capacity: usize,
}

impl<T> Fifo<T> {
    /// Creates a FIFO holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FIFO capacity must be positive");
        Fifo {
            items: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Current occupancy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Returns `true` when at capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Maximum occupancy.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues an item; on a full queue the item is handed back.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` when the queue is full (back-pressure).
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            Err(item)
        } else {
            self.items.push_back(item);
            Ok(())
        }
    }

    /// Dequeues the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peeks at the oldest item.
    #[must_use]
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }
}

/// A latency pipe: items become ready a fixed number of cycles after entry.
/// Models memory/response latency.
///
/// # Examples
///
/// ```
/// use ascdg_duv::kernel::DelayLine;
///
/// let mut d = DelayLine::new();
/// d.insert("resp", 10); // ready at cycle 10
/// assert!(d.drain_ready(9).is_empty());
/// assert_eq!(d.drain_ready(10), vec!["resp"]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DelayLine<T> {
    /// `(ready_cycle, item)` pairs; kept unsorted, drained by scan (the
    /// queues here are tens of entries, not thousands).
    pending: Vec<(u64, T)>,
}

impl<T> DelayLine<T> {
    /// Creates an empty delay line.
    #[must_use]
    pub fn new() -> Self {
        DelayLine {
            pending: Vec::new(),
        }
    }

    /// Number of in-flight items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns `true` when nothing is in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Inserts an item that becomes ready at `ready_cycle`.
    pub fn insert(&mut self, item: T, ready_cycle: u64) {
        self.pending.push((ready_cycle, item));
    }

    /// Removes and returns every item whose ready cycle is `<= now`.
    pub fn drain_ready(&mut self, now: u64) -> Vec<T> {
        let mut ready = Vec::new();
        self.drain_ready_with(now, |item| ready.push(item));
        ready
    }

    /// Like [`DelayLine::drain_ready`], but handing each ready item to a
    /// callback instead of allocating a `Vec` — the batched kernels' hot
    /// path. The scan order (and therefore the order items reach `f`) is
    /// exactly the `swap_remove` order of [`DelayLine::drain_ready`]; that
    /// order is observable model behavior (it decides cache fill order), so
    /// both entry points share this implementation.
    pub fn drain_ready_with(&mut self, now: u64, mut f: impl FnMut(T)) {
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].0 <= now {
                f(self.pending.swap_remove(i).1);
            } else {
                i += 1;
            }
        }
    }

    /// Removes every in-flight item (arena reuse between simulations).
    pub fn clear(&mut self) {
        self.pending.clear();
    }

    /// The earliest ready cycle among in-flight items.
    #[must_use]
    pub fn next_ready(&self) -> Option<u64> {
        self.pending.iter().map(|&(c, _)| c).min()
    }

    /// Iterates over in-flight items (arbitrary order) — the model's
    /// equivalent of an MSHR CAM lookup.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        self.pending.iter().map(|(_, item)| item)
    }
}

/// A credit pool modeling a fixed set of hardware resources (e.g. the L3's
/// 16 bypass slots).
///
/// # Examples
///
/// ```
/// use ascdg_duv::kernel::CreditPool;
///
/// let mut p = CreditPool::new(2);
/// assert!(p.acquire() && p.acquire());
/// assert!(!p.acquire(), "exhausted");
/// assert_eq!(p.in_use(), 2);
/// p.release();
/// assert_eq!(p.in_use(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CreditPool {
    total: usize,
    in_use: usize,
}

impl CreditPool {
    /// Creates a pool with `total` credits.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero.
    #[must_use]
    pub fn new(total: usize) -> Self {
        assert!(total > 0, "credit pool must have at least one credit");
        CreditPool { total, in_use: 0 }
    }

    /// Takes one credit; returns `false` when exhausted.
    pub fn acquire(&mut self) -> bool {
        if self.in_use < self.total {
            self.in_use += 1;
            true
        } else {
            false
        }
    }

    /// Returns one credit.
    ///
    /// # Panics
    ///
    /// Panics if no credits are outstanding (a protocol violation in the
    /// calling model).
    pub fn release(&mut self) {
        assert!(self.in_use > 0, "credit released but none outstanding");
        self.in_use -= 1;
    }

    /// Credits currently held.
    #[must_use]
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Total credits.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Remaining credits.
    #[must_use]
    pub fn available(&self) -> usize {
        self.total - self.in_use
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_backpressure() {
        let mut q = Fifo::new(3);
        for i in 0..3 {
            q.push(i).unwrap();
        }
        assert!(q.is_full());
        assert_eq!(q.push(9), Err(9));
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.front(), Some(&1));
        assert_eq!(q.len(), 2);
        q.push(3).unwrap();
        let drained: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![1, 2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn fifo_zero_capacity_panics() {
        let _: Fifo<u8> = Fifo::new(0);
    }

    #[test]
    fn delay_line_readiness() {
        let mut d = DelayLine::new();
        d.insert('a', 5);
        d.insert('b', 3);
        d.insert('c', 5);
        assert_eq!(d.next_ready(), Some(3));
        assert_eq!(d.drain_ready(2), Vec::<char>::new());
        assert_eq!(d.drain_ready(3), vec!['b']);
        let mut at5 = d.drain_ready(7);
        at5.sort_unstable();
        assert_eq!(at5, vec!['a', 'c']);
        assert!(d.is_empty());
        assert_eq!(d.next_ready(), None);
    }

    #[test]
    fn drain_ready_with_matches_drain_ready_order() {
        // Interleave ready/unready entries so the swap_remove scan takes a
        // non-trivial path; both drains must yield the same sequence.
        let entries = [(3u64, 'a'), (9, 'b'), (1, 'c'), (9, 'd'), (2, 'e')];
        let mut via_vec = DelayLine::new();
        let mut via_cb = DelayLine::new();
        for &(cycle, item) in &entries {
            via_vec.insert(item, cycle);
            via_cb.insert(item, cycle);
        }
        let drained = via_vec.drain_ready(5);
        let mut seen = Vec::new();
        via_cb.drain_ready_with(5, |item| seen.push(item));
        assert_eq!(drained, seen);
        assert_eq!(via_vec.len(), via_cb.len());
        via_cb.clear();
        assert!(via_cb.is_empty());
    }

    #[test]
    fn credit_pool_lifecycle() {
        let mut p = CreditPool::new(3);
        assert_eq!(p.available(), 3);
        assert!(p.acquire());
        assert_eq!((p.in_use(), p.available(), p.total()), (1, 2, 3));
        p.release();
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "none outstanding")]
    fn credit_underflow_panics() {
        let mut p = CreditPool::new(1);
        p.release();
    }
}
