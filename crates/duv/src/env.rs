//! The verification-environment abstraction the AS-CDG flow runs against.

use ascdg_coverage::{CoverageModel, CoverageVector, PLANE_LANES};
use ascdg_stimgen::instance_seed;
use ascdg_template::{ParamRegistry, ResolvedParams, TemplateLibrary, TestTemplate};

use crate::{EnvError, SimScratch};

/// One segment of a fused plane block: a short run of instances of one
/// resolved template, packed lane-adjacent with segments of *other*
/// templates into a single [`VerifEnv::simulate_fused_plane`] invocation.
///
/// Segments come from different campaign groups or serve tenants whose
/// chunk tails individually under-fill a kernel block; fusing them keeps
/// the plane's popcount sweep working on full words.
#[derive(Debug, Clone, Copy)]
pub struct FusedSegment<'a> {
    /// The segment's resolved template parameters.
    pub params: &'a ResolvedParams,
    /// The segment's pre-derived sampler seeds, one lane per seed.
    pub seeds: &'a [u64],
}

/// A black-box verification environment: a simulated unit plus everything
/// the verification team built around it.
///
/// This is the entire surface the AS-CDG flow sees — matching the paper's
/// claim that the flow "operates outside the existing design and
/// verification environment". An environment bundles:
///
/// * the **parameter registry**: every generator parameter with its default
///   bias;
/// * the **stock template library**: the regression templates accumulated
///   during the project, which the coarse-grained search mines;
/// * the **coverage model**: the unit's declared events;
/// * the **simulator**: template + seed → coverage vector.
///
/// Implementations must be `Send + Sync`; the batch environment simulates
/// from many worker threads.
pub trait VerifEnv: Send + Sync {
    /// The unit's name (used in reports).
    fn unit_name(&self) -> &str;

    /// The parameter registry with environment defaults.
    fn registry(&self) -> &ParamRegistry;

    /// The unit's coverage model.
    fn coverage_model(&self) -> &CoverageModel;

    /// The existing test-template library.
    fn stock_library(&self) -> &TemplateLibrary;

    /// Simulates one test-instance generated from pre-resolved parameters
    /// with a fully-derived generator seed.
    ///
    /// `sampler_seed` is the final seed the environment hands its
    /// [`ParamSampler`](ascdg_stimgen::ParamSampler) — all derivation
    /// (base seed, template-name hash, instance index) has already
    /// happened in the caller. This is the batch hot path: runners hash
    /// the template name once per point
    /// ([`SeedStream`](ascdg_stimgen::SeedStream)) and derive each
    /// instance's seed with pure integer mixing, so the per-simulation
    /// cost carries no string hashing.
    ///
    /// # Errors
    ///
    /// Returns [`EnvError::StimGen`] if generation draws an incompatible
    /// value (cannot happen for parameters validated by the registry).
    fn simulate_seeded(
        &self,
        resolved: &ResolvedParams,
        sampler_seed: u64,
    ) -> Result<CoverageVector, EnvError>;

    /// Simulates a whole chunk of instances of one resolved template, one
    /// per entry of `seeds`, reusing the worker's `scratch` buffers.
    ///
    /// The result is **byte-identical** to calling
    /// [`VerifEnv::simulate_seeded`] once per seed, in order — the batch
    /// entry point exists purely for throughput: the built-in units
    /// override it with cache-resident kernels that generate every stimulus
    /// program into the scratch arena and run the cycle loops back to back
    /// over hot model state. The default implementation is that sequential
    /// loop (drawing coverage vectors from the scratch pool), so external
    /// environments keep working unchanged.
    ///
    /// # Errors
    ///
    /// Any [`VerifEnv::simulate_seeded`] error; partial results are
    /// discarded.
    fn simulate_batch(
        &self,
        resolved: &ResolvedParams,
        seeds: &[u64],
        scratch: &mut SimScratch,
    ) -> Result<Vec<CoverageVector>, EnvError> {
        let _ = scratch;
        seeds
            .iter()
            .map(|&s| self.simulate_seeded(resolved, s))
            .collect()
    }

    /// Simulates a kernel block of up to
    /// [`PLANE_LANES`](ascdg_coverage::PLANE_LANES) instances directly
    /// into the scratch's transposed coverage bit-plane (seed `i` owns
    /// lane `i`), leaving the block in `scratch.plane()` — zero per-sim
    /// coverage allocation on the hot path.
    ///
    /// The recorded plane is **byte-identical** to scattering each
    /// [`VerifEnv::simulate_batch`] vector into its lane; the built-in
    /// units override this with kernels whose cycle models record
    /// straight into the lane (`word(event) |= 1 << lane`), and the
    /// default implementation is exactly that scatter bridge, so
    /// external environments keep working unchanged.
    ///
    /// # Errors
    ///
    /// Any [`VerifEnv::simulate_batch`] error; the plane contents are
    /// unspecified after an error.
    ///
    /// # Panics
    ///
    /// Panics when `seeds` exceeds one plane block
    /// ([`PLANE_LANES`](ascdg_coverage::PLANE_LANES) = 64 seeds).
    fn simulate_batch_plane(
        &self,
        resolved: &ResolvedParams,
        seeds: &[u64],
        scratch: &mut SimScratch,
    ) -> Result<(), EnvError> {
        let events = self.coverage_model().len();
        let covs = self.simulate_batch(resolved, seeds, scratch)?;
        let plane = scratch.plane_mut();
        plane.begin(events, covs.len());
        for (lane, cov) in covs.iter().enumerate() {
            plane.record_vector(lane, cov);
        }
        for cov in covs {
            scratch.recycle(cov);
        }
        Ok(())
    }

    /// Simulates several lane-adjacent segments — each a short seed run
    /// of its *own* resolved template — into one shared plane block in
    /// `scratch.plane()`: segment 0 owns lanes `0..seg0.seeds.len()`,
    /// segment 1 the next run, and so on.
    ///
    /// Each segment's lanes are **byte-identical** to simulating that
    /// segment alone through [`VerifEnv::simulate_batch_plane`]; fusion
    /// only changes which lanes share a block, never what any lane
    /// records. The default implementation routes each segment through
    /// [`VerifEnv::simulate_batch`] (each unit's overridden arena
    /// kernel) and scatters the vectors at the segment's lane offset, so
    /// external environments keep working unchanged. Callers fold each
    /// segment's lane range out with
    /// [`CoveragePlane::fold_lanes_into`](ascdg_coverage::CoveragePlane::fold_lanes_into).
    ///
    /// # Errors
    ///
    /// Any [`VerifEnv::simulate_batch`] error; the plane contents are
    /// unspecified after an error.
    ///
    /// # Panics
    ///
    /// Panics when the segments' total seed count exceeds one plane
    /// block ([`PLANE_LANES`] = 64 lanes).
    fn simulate_fused_plane(
        &self,
        segments: &[FusedSegment<'_>],
        scratch: &mut SimScratch,
    ) -> Result<(), EnvError> {
        let total: usize = segments.iter().map(|s| s.seeds.len()).sum();
        assert!(
            total <= PLANE_LANES,
            "fused block of {total} lanes exceeds {PLANE_LANES}"
        );
        let events = self.coverage_model().len();
        let mut staged = Vec::with_capacity(total);
        for seg in segments {
            staged.extend(self.simulate_batch(seg.params, seg.seeds, scratch)?);
        }
        let plane = scratch.plane_mut();
        plane.begin(events, total);
        for (lane, cov) in staged.iter().enumerate() {
            plane.record_vector(lane, cov);
        }
        for cov in staged {
            scratch.recycle(cov);
        }
        Ok(())
    }

    /// Simulates one test-instance generated from pre-resolved parameters,
    /// deriving the generator seed from the template name.
    ///
    /// `template_name` and `seed` identify the instance: the generator seed
    /// is derived from them (`instance_seed(seed, template_name, 0)`), so a
    /// (name, seed) pair is fully reproducible. Hot loops should hash the
    /// name once and call [`VerifEnv::simulate_seeded`] instead — the
    /// stream is byte-identical.
    ///
    /// # Errors
    ///
    /// Any [`VerifEnv::simulate_seeded`] error.
    fn simulate_resolved(
        &self,
        resolved: &ResolvedParams,
        template_name: &str,
        seed: u64,
    ) -> Result<CoverageVector, EnvError> {
        self.simulate_seeded(resolved, instance_seed(seed, template_name, 0))
    }

    /// Validates, resolves and simulates a template in one call.
    ///
    /// Batch runners should resolve once via [`ParamRegistry::resolve`] and
    /// call [`VerifEnv::simulate_seeded`] per instance instead.
    ///
    /// # Errors
    ///
    /// Returns [`EnvError::Template`] when the template does not validate
    /// against the registry, or any [`VerifEnv::simulate_seeded`] error.
    fn simulate(&self, template: &TestTemplate, seed: u64) -> Result<CoverageVector, EnvError> {
        let resolved = self.registry().resolve(template)?;
        self.simulate_resolved(&resolved, template.name(), seed)
    }
}

impl<T: VerifEnv + ?Sized> VerifEnv for &T {
    fn unit_name(&self) -> &str {
        (**self).unit_name()
    }

    fn registry(&self) -> &ParamRegistry {
        (**self).registry()
    }

    fn coverage_model(&self) -> &CoverageModel {
        (**self).coverage_model()
    }

    fn stock_library(&self) -> &TemplateLibrary {
        (**self).stock_library()
    }

    fn simulate_seeded(
        &self,
        resolved: &ResolvedParams,
        sampler_seed: u64,
    ) -> Result<CoverageVector, EnvError> {
        (**self).simulate_seeded(resolved, sampler_seed)
    }

    fn simulate_batch(
        &self,
        resolved: &ResolvedParams,
        seeds: &[u64],
        scratch: &mut SimScratch,
    ) -> Result<Vec<CoverageVector>, EnvError> {
        (**self).simulate_batch(resolved, seeds, scratch)
    }

    fn simulate_batch_plane(
        &self,
        resolved: &ResolvedParams,
        seeds: &[u64],
        scratch: &mut SimScratch,
    ) -> Result<(), EnvError> {
        (**self).simulate_batch_plane(resolved, seeds, scratch)
    }

    fn simulate_fused_plane(
        &self,
        segments: &[FusedSegment<'_>],
        scratch: &mut SimScratch,
    ) -> Result<(), EnvError> {
        (**self).simulate_fused_plane(segments, scratch)
    }

    fn simulate_resolved(
        &self,
        resolved: &ResolvedParams,
        template_name: &str,
        seed: u64,
    ) -> Result<CoverageVector, EnvError> {
        (**self).simulate_resolved(resolved, template_name, seed)
    }
}

impl<T: VerifEnv + ?Sized> VerifEnv for std::sync::Arc<T> {
    fn unit_name(&self) -> &str {
        (**self).unit_name()
    }

    fn registry(&self) -> &ParamRegistry {
        (**self).registry()
    }

    fn coverage_model(&self) -> &CoverageModel {
        (**self).coverage_model()
    }

    fn stock_library(&self) -> &TemplateLibrary {
        (**self).stock_library()
    }

    fn simulate_seeded(
        &self,
        resolved: &ResolvedParams,
        sampler_seed: u64,
    ) -> Result<CoverageVector, EnvError> {
        (**self).simulate_seeded(resolved, sampler_seed)
    }

    fn simulate_batch(
        &self,
        resolved: &ResolvedParams,
        seeds: &[u64],
        scratch: &mut SimScratch,
    ) -> Result<Vec<CoverageVector>, EnvError> {
        (**self).simulate_batch(resolved, seeds, scratch)
    }

    fn simulate_batch_plane(
        &self,
        resolved: &ResolvedParams,
        seeds: &[u64],
        scratch: &mut SimScratch,
    ) -> Result<(), EnvError> {
        (**self).simulate_batch_plane(resolved, seeds, scratch)
    }

    fn simulate_fused_plane(
        &self,
        segments: &[FusedSegment<'_>],
        scratch: &mut SimScratch,
    ) -> Result<(), EnvError> {
        (**self).simulate_fused_plane(segments, scratch)
    }

    fn simulate_resolved(
        &self,
        resolved: &ResolvedParams,
        template_name: &str,
        seed: u64,
    ) -> Result<CoverageVector, EnvError> {
        (**self).simulate_resolved(resolved, template_name, seed)
    }
}
