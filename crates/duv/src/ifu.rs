//! The instruction fetch unit (IFU): an SMT front end with a fetch buffer.
//!
//! This unit reproduces the coverage structure of the paper's Fig. 5: a
//! cross-product model `entry(0-7) x thread(0-3) x sector(0-3) x branch(0-1)`
//! — 256 events. The model:
//!
//! * an 8-entry compacting fetch buffer; a fetch allocates the entry at the
//!   current occupancy index;
//! * a dispatcher that drains one entry per cycle — two when occupancy
//!   reaches [`PRIORITY_DRAIN_AT`] — unless stalled by back-pressure;
//! * when occupancy reaches 7 the front end performs a forced drain before
//!   allocating, so **entry 7 is architecturally unhittable** — exactly the
//!   32 events the paper reports as "out of the unit capabilities to hit";
//! * each fetch walks its thread's stream sequentially (16-byte granules,
//!   4 sectors per 64-byte line) and taken branches redirect it.
//!
//! The cross event `(entry, thread, sector, branch)` fires at allocation.
//! Deep entries need sustained stalls, thread 3 needs an SMT4 mix the
//! defaults never produce, and `branch=1` needs branch density — the
//! parameters the coarse-grained search must discover.

use ascdg_coverage::{CoverageModel, CoverageSink, CoverageVector, CrossProduct, Feature};
use ascdg_stimgen::{FetchOp, FetchProgram, ParamSampler};
use ascdg_template::{
    ParamDef, ParamRegistry, ResolvedParams, TemplateLibrary, TestTemplate, Value,
};

use crate::{EnvError, SimScratch, VerifEnv};

/// Fetch buffer depth.
pub const BUFFER_ENTRIES: usize = 8;
/// Occupancy at which the dispatcher drains two entries per cycle.
pub const PRIORITY_DRAIN_AT: usize = 4;

/// The IFU verification environment.
///
/// # Examples
///
/// ```
/// use ascdg_duv::{ifu::IfuEnv, VerifEnv};
///
/// let env = IfuEnv::new();
/// assert_eq!(env.coverage_model().len(), 256);
/// assert!(env.coverage_model().cross_product().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct IfuEnv {
    registry: ParamRegistry,
    model: CoverageModel,
    library: TemplateLibrary,
}

impl Default for IfuEnv {
    fn default() -> Self {
        IfuEnv::new()
    }
}

/// Builds the 256-event cross-product space of the paper's Fig. 5.
#[must_use]
pub fn cross_product() -> CrossProduct {
    CrossProduct::new([
        Feature::numeric("entry", BUFFER_ENTRIES),
        Feature::numeric("thread", 4),
        Feature::numeric("sector", 4),
        Feature::numeric("branch", 2),
    ])
    .expect("static feature list is valid")
}

fn registry() -> ParamRegistry {
    let sub = |lo, hi| Value::SubRange { lo, hi };
    let mut reg = ParamRegistry::new();
    let defs = [
        // --- parameters relevant to the cross product ---
        ParamDef::range("FetchCount", 60, 240).unwrap(),
        ParamDef::weights(
            "ThreadMix",
            [
                (Value::Int(0), 55u32),
                (Value::Int(1), 30),
                (Value::Int(2), 15),
                (Value::Int(3), 0),
            ],
        )
        .unwrap(),
        ParamDef::range("BranchPct", 0, 40).unwrap(),
        ParamDef::weights(
            "StallPct",
            [
                (sub(0, 10), 80u32),
                (sub(10, 30), 20),
                (sub(30, 60), 0),
                (sub(60, 90), 0),
            ],
        )
        .unwrap(),
        ParamDef::weights("FetchAlign", [("seq", 85u32), ("jump", 15)]).unwrap(),
        // --- plausible knobs irrelevant to the cross product ---
        ParamDef::range("IcacheScrub", 0, 10).unwrap(),
        ParamDef::weights("ParityEn", [("on", 90u32), ("off", 10)]).unwrap(),
        ParamDef::weights(
            "PredictorSel",
            [("gshare", 60u32), ("tage", 30), ("static", 10)],
        )
        .unwrap(),
        ParamDef::range("BtbSize", 1, 5).unwrap(),
        ParamDef::range("TlbPressure", 0, 20).unwrap(),
        ParamDef::range("RasDepth", 4, 33).unwrap(),
        ParamDef::range("DecodeWidth", 2, 9).unwrap(),
        ParamDef::weights("UopFusion", [("on", 50u32), ("off", 50)]).unwrap(),
    ];
    for d in defs {
        reg.define(d).expect("unique parameter names");
    }
    reg
}

fn stock_library() -> TemplateLibrary {
    let sub = |lo, hi| Value::SubRange { lo, hi };
    let t = TestTemplate::builder;
    [
        t("ifu_smoke").build(),
        t("ifu_linear").range("BranchPct", 0, 5).unwrap().build(),
        t("ifu_branch_heavy")
            .range("BranchPct", 25, 40)
            .unwrap()
            .build(),
        t("ifu_smt2")
            .weights("ThreadMix", [(Value::Int(0), 50u32), (Value::Int(1), 50)])
            .unwrap()
            .build(),
        t("ifu_smt4")
            .weights(
                "ThreadMix",
                [
                    (Value::Int(0), 25u32),
                    (Value::Int(1), 25),
                    (Value::Int(2), 25),
                    (Value::Int(3), 25),
                ],
            )
            .unwrap()
            .build(),
        t("ifu_stall_storm")
            .weights("StallPct", [(sub(10, 30), 60u32), (sub(30, 60), 40)])
            .unwrap()
            .build(),
        t("ifu_backpressure")
            .weights(
                "StallPct",
                [(sub(10, 30), 60u32), (sub(30, 60), 35), (sub(60, 90), 5)],
            )
            .unwrap()
            .weights(
                "ThreadMix",
                [
                    (Value::Int(0), 40u32),
                    (Value::Int(1), 30),
                    (Value::Int(2), 25),
                    (Value::Int(3), 5),
                ],
            )
            .unwrap()
            .range("BranchPct", 10, 30)
            .unwrap()
            .range("FetchCount", 120, 240)
            .unwrap()
            .build(),
        t("ifu_jumpy")
            .weights("FetchAlign", [("jump", 100u32)])
            .unwrap()
            .build(),
        t("ifu_scrub").range("IcacheScrub", 5, 10).unwrap().build(),
        t("ifu_tage")
            .weights("PredictorSel", [("tage", 100u32)])
            .unwrap()
            .build(),
        t("ifu_tlb_pressure")
            .range("TlbPressure", 10, 20)
            .unwrap()
            .build(),
        t("ifu_wide_decode")
            .range("DecodeWidth", 6, 9)
            .unwrap()
            .build(),
    ]
    .into_iter()
    .collect()
}

impl IfuEnv {
    /// Builds the environment (registry, stock library, coverage model).
    #[must_use]
    pub fn new() -> Self {
        IfuEnv {
            registry: registry(),
            model: CoverageModel::from_cross_product("ifu", cross_product())
                .expect("cross-product names are unique"),
            library: stock_library(),
        }
    }

    fn generate(&self, sampler: &mut ParamSampler<'_>) -> Result<FetchProgram, EnvError> {
        let mut program = Vec::new();
        self.generate_into(sampler, &mut program)?;
        Ok(program)
    }

    /// Appends one instance's fetch program to `out` (the arena of the
    /// batched kernel; single-instance callers pass a fresh `Vec`).
    fn generate_into(
        &self,
        sampler: &mut ParamSampler<'_>,
        out: &mut Vec<FetchOp>,
    ) -> Result<(), EnvError> {
        let count = sampler.sample_int("FetchCount")? as usize;
        let branch_rate = sampler.rate("BranchPct")?;
        let jumpy = sampler.sample_choice("FetchAlign")? == "jump";
        // Per-thread sequential fetch pointers (16-byte granules).
        let mut pc = [0u64; 4];
        for (i, p) in pc.iter_mut().enumerate() {
            *p = (sampler.uniform(0, 1 << 16) as u64) << 4 | ((i as u64) << 2);
        }
        out.reserve(count);
        for _ in 0..count {
            let thread = (sampler.sample_int("ThreadMix")? & 3) as usize;
            let taken_branch = sampler.chance(branch_rate);
            let stall = sampler.sample_int("StallPct")?;
            // Stall percentage becomes a per-fetch stall of 0 or 1 cycles.
            let stall_cycles = u32::from(sampler.chance(stall as f64 / 100.0));
            let addr = pc[thread];
            out.push(FetchOp {
                thread: thread as u8,
                addr,
                taken_branch,
                stall: stall_cycles,
            });
            // Advance the stream: sequential walk, branch redirect, or
            // jumpy access pattern.
            if taken_branch || jumpy {
                pc[thread] = (sampler.uniform(0, 1 << 16) as u64) << 4;
            } else {
                pc[thread] = addr + 16;
            }
        }
        Ok(())
    }

    /// Runs the fetch-buffer model over a program, collecting coverage.
    #[must_use]
    pub fn run_program(&self, program: &FetchProgram) -> CoverageVector {
        let mut cov = CoverageVector::empty(self.model.len());
        self.run_program_into(program, &mut cov);
        cov
    }

    /// [`IfuEnv::run_program`] into a caller-provided (zeroed) coverage
    /// sink — a `CoverageVector` or a bit-plane lane.
    fn run_program_into<S: CoverageSink>(&self, program: &[FetchOp], cov: &mut S) {
        let cp = self
            .model
            .cross_product()
            .expect("IFU model is a cross product");
        let mut occupancy: usize = 0;
        let mut stall_budget: u32 = 0;

        for op in program {
            // Dispatcher phase: drain unless stalled; priority drain when
            // the buffer runs deep.
            if stall_budget > 0 {
                stall_budget -= 1;
            } else {
                // The dispatcher escalates as the buffer runs deep: normal
                // drain below PRIORITY_DRAIN_AT, double drain from there,
                // triple drain in the last two entries. Sustained deep
                // occupancy therefore needs a stall rate above ~2/3.
                let drains = if occupancy > PRIORITY_DRAIN_AT {
                    3
                } else if occupancy >= PRIORITY_DRAIN_AT - 1 {
                    2
                } else {
                    1
                };
                occupancy = occupancy.saturating_sub(drains);
            }
            // Allocation guard: entry 7 is reserved; the front end forces a
            // drain instead of filling the last entry.
            if occupancy + 1 >= BUFFER_ENTRIES {
                occupancy -= 1;
            }
            let entry = occupancy;
            occupancy += 1;
            stall_budget += op.stall;

            let coords = [
                entry,
                (op.thread & 3) as usize,
                op.sector() as usize,
                usize::from(op.taken_branch),
            ];
            cov.hit(cp.event_id(&coords).expect("coords are in range"));
        }
    }
}

impl VerifEnv for IfuEnv {
    fn unit_name(&self) -> &str {
        "ifu"
    }

    fn registry(&self) -> &ParamRegistry {
        &self.registry
    }

    fn coverage_model(&self) -> &CoverageModel {
        &self.model
    }

    fn stock_library(&self) -> &TemplateLibrary {
        &self.library
    }

    fn simulate_seeded(
        &self,
        resolved: &ResolvedParams,
        sampler_seed: u64,
    ) -> Result<CoverageVector, EnvError> {
        let mut sampler = ParamSampler::new(resolved, sampler_seed);
        let program = self.generate(&mut sampler)?;
        Ok(self.run_program(&program))
    }

    fn simulate_batch(
        &self,
        resolved: &ResolvedParams,
        seeds: &[u64],
        scratch: &mut SimScratch,
    ) -> Result<Vec<CoverageVector>, EnvError> {
        // Two-phase kernel: `run_program` draws nothing from the sampler, so
        // the whole chunk's programs can be generated first (back to back in
        // the scratch arena) and the cycle loops then run while the buffer
        // model's working set stays cache-resident.
        scratch.fetch_ops.clear();
        scratch.fetch_bounds.clear();
        scratch.fetch_bounds.push(0);
        for &seed in seeds {
            let mut sampler = ParamSampler::new(resolved, seed);
            self.generate_into(&mut sampler, &mut scratch.fetch_ops)?;
            scratch.fetch_bounds.push(scratch.fetch_ops.len());
        }
        let mut out = Vec::with_capacity(seeds.len());
        for w in 0..seeds.len() {
            let (lo, hi) = (scratch.fetch_bounds[w], scratch.fetch_bounds[w + 1]);
            let mut cov = scratch.take_cov(self.model.len());
            self.run_program_into(&scratch.fetch_ops[lo..hi], &mut cov);
            out.push(cov);
        }
        Ok(out)
    }

    fn simulate_batch_plane(
        &self,
        resolved: &ResolvedParams,
        seeds: &[u64],
        scratch: &mut SimScratch,
    ) -> Result<(), EnvError> {
        // Same two-phase kernel as `simulate_batch`, but the cycle loops
        // record straight into plane lanes — no per-sim vectors at all.
        scratch.fetch_ops.clear();
        scratch.fetch_bounds.clear();
        scratch.fetch_bounds.push(0);
        for &seed in seeds {
            let mut sampler = ParamSampler::new(resolved, seed);
            self.generate_into(&mut sampler, &mut scratch.fetch_ops)?;
            scratch.fetch_bounds.push(scratch.fetch_ops.len());
        }
        let SimScratch {
            fetch_ops,
            fetch_bounds,
            plane,
            ..
        } = scratch;
        plane.begin(self.model.len(), seeds.len());
        for lane in 0..seeds.len() {
            let (lo, hi) = (fetch_bounds[lane], fetch_bounds[lane + 1]);
            self.run_program_into(&fetch_ops[lo..hi], &mut plane.lane(lane));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascdg_coverage::{CoverageRepository, StatusPolicy, TemplateId};

    fn env() -> IfuEnv {
        IfuEnv::new()
    }

    #[test]
    fn stock_templates_validate() {
        let env = env();
        for (_, t) in env.stock_library().iter() {
            env.registry().validate(t).unwrap();
        }
    }

    #[test]
    fn entry7_is_unhittable_even_under_max_pressure() {
        let env = env();
        // A hand-built worst case: every fetch stalls the dispatcher.
        let program: FetchProgram = (0..2000)
            .map(|i| FetchOp {
                thread: (i % 4) as u8,
                addr: (i as u64) << 4,
                taken_branch: i % 2 == 0,
                stall: 1,
            })
            .collect();
        let cov = env.run_program(&program);
        let cp = env.coverage_model().cross_product().unwrap();
        for e in cp.slice(0, 7) {
            assert!(!cov.get(e), "entry7 event {} was hit", e);
        }
        // But entry 6 is reachable under this pressure.
        assert!(cp.slice(0, 6).iter().any(|&e| cov.get(e)));
    }

    #[test]
    fn default_traffic_stays_shallow_and_misses_thread3() {
        let env = env();
        let smoke = env.stock_library().by_name("ifu_smoke").unwrap().1.clone();
        let resolved = env.registry().resolve(&smoke).unwrap();
        let cp = env.coverage_model().cross_product().unwrap();
        let mut union = CoverageVector::empty(env.coverage_model().len());
        for s in 500..700 {
            union.union_with(&env.simulate_resolved(&resolved, "smoke", s).unwrap());
        }
        // Thread 3 has zero default weight.
        for e in cp.slice(1, 3) {
            assert!(!union.get(e), "thread3 event hit by default mix");
        }
        // Deep entries unreachable with the default stall profile.
        for entry in 5..8 {
            for e in cp.slice(0, entry) {
                assert!(!union.get(e), "entry{entry} hit under default stalls");
            }
        }
        // Shallow entries covered.
        assert!(cp.slice(0, 0).iter().any(|&e| union.get(e)));
    }

    #[test]
    fn backpressure_template_reaches_deep_entries() {
        let env = env();
        let bp = env
            .stock_library()
            .by_name("ifu_backpressure")
            .unwrap()
            .1
            .clone();
        let resolved = env.registry().resolve(&bp).unwrap();
        let cp = env.coverage_model().cross_product().unwrap();
        let mut union = CoverageVector::empty(env.coverage_model().len());
        for s in 0..200 {
            union.union_with(&env.simulate_resolved(&resolved, "bp", s).unwrap());
        }
        let deep_hit = (4..7).any(|entry| cp.slice(0, entry).iter().any(|&e| union.get(e)));
        assert!(deep_hit, "backpressure should reach entries 4-6");
    }

    #[test]
    fn sectors_all_covered_by_sequential_walk() {
        let env = env();
        let t = env.stock_library().by_name("ifu_smoke").unwrap().1.clone();
        let resolved = env.registry().resolve(&t).unwrap();
        let cp = env.coverage_model().cross_product().unwrap();
        let mut union = CoverageVector::empty(env.coverage_model().len());
        for s in 0..100 {
            union.union_with(&env.simulate_resolved(&resolved, "t", s).unwrap());
        }
        for sector in 0..4 {
            assert!(
                cp.slice(2, sector).iter().any(|&e| union.get(e)),
                "sector {sector} never covered"
            );
        }
    }

    #[test]
    fn status_counts_shape_before_cdg() {
        let env = env();
        let repo = CoverageRepository::new(env.coverage_model().clone());
        for (idx, t) in env.stock_library().iter() {
            let resolved = env.registry().resolve(t).unwrap();
            for s in 0..60 {
                repo.record(
                    TemplateId(idx as u32),
                    &env.simulate_resolved(&resolved, t.name(), s).unwrap(),
                );
            }
        }
        let counts = repo.status_counts(StatusPolicy::default());
        assert_eq!(counts.total(), 256);
        // Before CDG a large chunk of the cross product must be uncovered,
        // and at least the shallow slices well-covered.
        assert!(counts.never_hit >= 32, "counts: {counts}");
        assert!(counts.well_hit + counts.lightly_hit > 0, "counts: {counts}");
    }

    #[test]
    fn deterministic_per_seed() {
        let env = env();
        let t = env.stock_library().get(0).unwrap().clone();
        assert_eq!(env.simulate(&t, 11).unwrap(), env.simulate(&t, 11).unwrap());
    }
    #[test]
    fn branch_redirect_changes_stream() {
        // Two fetches from the same thread: without a branch the second
        // address is sequential (+16); the generator enforces this, so we
        // check it statistically over generated programs.
        let env = env();
        let t = TestTemplate::builder("seq_only")
            .weights("FetchAlign", [("seq", 100u32)])
            .unwrap()
            .range("BranchPct", 0, 1)
            .unwrap()
            .build();
        let resolved = env.registry().resolve(&t).unwrap();
        // Sequential alignment pinned and branches disabled: every
        // same-thread pair must advance by one 16-byte granule.
        let mut sampler =
            ascdg_stimgen::ParamSampler::new(&resolved, ascdg_stimgen::instance_seed(1, "x", 0));
        let program = env.generate(&mut sampler).unwrap();
        let mut sequential = 0;
        let mut total = 0;
        let mut last: [Option<(u64, bool)>; 4] = [None; 4];
        for op in &program {
            let th = (op.thread & 3) as usize;
            if let Some((prev_addr, prev_branch)) = last[th] {
                if !prev_branch {
                    total += 1;
                    sequential += u64::from(op.addr == prev_addr + 16);
                }
            }
            last[th] = Some((op.addr, op.taken_branch));
        }
        assert!(total > 10, "not enough same-thread pairs");
        assert_eq!(sequential, total, "non-branch fetches must be sequential");
    }

    #[test]
    fn stall_budget_accumulates_occupancy() {
        let env = env();
        let cp = env.coverage_model().cross_product().unwrap();
        // No stalls: occupancy never exceeds entry 1 after the first op.
        let calm: FetchProgram = (0..50)
            .map(|i| FetchOp {
                thread: 0,
                addr: (i as u64) << 4,
                taken_branch: false,
                stall: 0,
            })
            .collect();
        let cov = env.run_program(&calm);
        for entry in 2..8 {
            for e in cp.slice(0, entry) {
                assert!(!cov.get(e), "entry{entry} hit without stalls");
            }
        }
    }

    #[test]
    fn empty_program_hits_nothing() {
        let env = env();
        let cov = env.run_program(&FetchProgram::new());
        assert_eq!(cov.count_hits(), 0);
    }

    #[test]
    fn cross_event_coordinates_decode_consistently() {
        let env = env();
        let cp = env.coverage_model().cross_product().unwrap();
        let program: FetchProgram = vec![FetchOp {
            thread: 2,
            addr: 0x30, // sector 3
            taken_branch: true,
            stall: 0,
        }];
        let cov = env.run_program(&program);
        let hits: Vec<_> = cov.iter_hits().collect();
        assert_eq!(hits.len(), 1);
        let coords = cp.coords(hits[0]);
        assert_eq!(
            coords,
            vec![0, 2, 3, 1],
            "entry0, thread2, sector3, branch1"
        );
    }
}
