//! Simulated designs-under-verification (DUVs) for AS-CDG.
//!
//! The paper evaluates AS-CDG on units of IBM high-end processors. Those
//! designs are proprietary, so this crate provides cycle-based simulators
//! that reproduce the *coverage structure* the paper's evaluation relies on:
//!
//! * [`io_unit`] — a DMA engine with a CRC checker; its burst-length family
//!   `crc_004 .. crc_096` mirrors the paper's Fig. 3 I/O unit.
//! * [`l3cache`] — an L3 cache with a 16-credit bypass path; its
//!   buffer-fill family `byp_reqs01 .. byp_reqs16` mirrors Fig. 4.
//! * [`ifu`] — an SMT instruction-fetch unit with an 8-entry fetch buffer;
//!   its `entry × thread × sector × branch` cross-product (256 events, with
//!   the `entry7` slice architecturally unhittable) mirrors Fig. 5.
//!
//! A fourth, fully configurable [`synthetic`] environment provides
//! controlled CDG benchmarks with tunable hardness, in the spirit of the
//! authors' companion optimization paper.
//!
//! Each unit ships as a [`VerifEnv`]: the simulator plus its verification
//! environment — a parameter registry with default biases, a stock
//! test-template library (the "existing regression suite" the coarse-grained
//! search mines), and a coverage model. Everything above this crate is
//! black-box: the AS-CDG flow only calls [`VerifEnv::simulate`].
//!
//! # Examples
//!
//! ```
//! use ascdg_duv::io_unit::IoEnv;
//! use ascdg_duv::VerifEnv;
//!
//! let env = IoEnv::new();
//! let template = env.stock_library().get(0).unwrap().clone();
//! let coverage = env.simulate(&template, 1).unwrap();
//! assert_eq!(coverage.len(), env.coverage_model().len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::redundant_clone, clippy::large_enum_variant, clippy::perf)]

mod env;
mod error;
pub mod ifu;
pub mod io_unit;
pub mod kernel;
pub mod l3cache;
mod scratch;
pub mod synthetic;

pub use env::{FusedSegment, VerifEnv};
pub use error::EnvError;
pub use scratch::SimScratch;
