//! The L3 cache: a set-associative cache with a credit-limited bypass path.
//!
//! This unit reproduces the coverage structure of the paper's Fig. 4: a
//! monotone buffer-fill family `byp_reqs01 .. byp_reqs16`. The model:
//!
//! * a [`SETS`]`x`[`WAYS`] LRU cache (2048 lines), *warm-started* with the
//!   test's working set (the unit has been running long before the
//!   coverage window opens);
//! * every demand miss allocates one of [`BYPASS_CREDITS`] bypass slots
//!   until the memory response returns ([`MEM_LATENCY`] cycles plus
//!   jitter); the front end stalls when all credits are held, and prefetch
//!   misses are dropped instead of stalling;
//! * event `byp_reqsNN` fires when `NN` bypass slots are simultaneously
//!   occupied — filling the pool deeper and deeper is the family's
//!   difficulty gradient;
//! * background snoop traffic invalidates cached lines at a low rate, so
//!   even an in-cache working set produces isolated re-misses (that is what
//!   keeps `byp_reqs01` common while `byp_reqs04+` stays rare by default);
//! * the hardware prefetch engine issues *bursts* of back-to-back
//!   sequential requests ([`PfDepth`] lines per burst). Demand traffic is
//!   spaced at least [`MIN_GAP`] cycles apart, so deep bypass occupancy is
//!   only reachable by stacking prefetch bursts over a cache-exceeding
//!   working set — the parameter combination AS-CDG must discover.
//!
//! [`PfDepth`]: struct.L3Env.html#method.registry

use ascdg_coverage::{CoverageModel, CoverageSink, CoverageVector};
use ascdg_stimgen::{MemOp, MemProgram, MemRequest, ParamSampler};
use ascdg_template::{
    ParamDef, ParamRegistry, ResolvedParams, TemplateLibrary, TestTemplate, Value,
};

use crate::kernel::DelayLine;
use crate::{EnvError, SimScratch, VerifEnv};

/// Number of cache sets.
pub const SETS: usize = 256;
/// Cache associativity.
pub const WAYS: usize = 8;
/// Number of bypass slots (the depth of the `byp_reqs*` family).
pub const BYPASS_CREDITS: usize = 16;
/// Base memory latency in cycles.
pub const MEM_LATENCY: u64 = 40;
/// Maximum additional response jitter in cycles.
pub const MEM_JITTER: u64 = 12;
/// Minimum spacing between demand requests (front-end issue limit).
pub const MIN_GAP: i64 = 12;
/// Baseline per-request probability of a background snoop invalidation.
pub const BASE_SNOOP_RATE: f64 = 0.035;

/// The L3 verification environment.
///
/// # Examples
///
/// ```
/// use ascdg_duv::{l3cache::L3Env, VerifEnv};
///
/// let env = L3Env::new();
/// assert_eq!(env.unit_name(), "l3cache");
/// assert!(env.coverage_model().id("byp_reqs16").is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct L3Env {
    registry: ParamRegistry,
    model: CoverageModel,
    library: TemplateLibrary,
    /// `byp_reqsNN` event ids indexed by depth-1 (hot-path cache).
    bypass_ids: Vec<ascdg_coverage::EventId>,
}

impl Default for L3Env {
    fn default() -> Self {
        L3Env::new()
    }
}

fn event_names() -> Vec<String> {
    let mut names: Vec<String> = (1..=BYPASS_CREDITS)
        .map(|k| format!("byp_reqs{k:02}"))
        .collect();
    names.extend(
        [
            "ld_hit",
            "ld_miss",
            "st_hit",
            "st_miss",
            "prefetch_issued",
            "prefetch_dropped",
            "evict_line",
            "fill_complete",
            "front_end_stall",
            "same_line_b2b",
            "set_conflict",
            "mem_latency_spike",
            "snoop_invalidate",
            "thread0_active",
            "thread1_active",
            "thread2_active",
            "thread3_active",
            "all_threads_seen",
            "store_streak4",
            "stride_pattern_seen",
        ]
        .into_iter()
        .map(str::to_owned),
    );
    names
}

fn registry() -> ParamRegistry {
    let sub = |lo, hi| Value::SubRange { lo, hi };
    let mut reg = ParamRegistry::new();
    let defs = [
        // --- parameters relevant to the bypass family ---
        ParamDef::range("ReqCount", 40, 200).unwrap(),
        ParamDef::weights(
            "WorkingSet",
            [
                (sub(8, 64), 70u32),
                (sub(64, 512), 30),
                (sub(512, 4096), 0),
                (sub(4096, 32768), 0),
            ],
        )
        .unwrap(),
        ParamDef::range("GapL3", MIN_GAP, 64).unwrap(),
        ParamDef::weights("RwMix", [("load", 70u32), ("store", 29), ("prefetch", 1)]).unwrap(),
        ParamDef::weights("PfDepth", [(sub(1, 3), 100u32), (sub(3, 6), 0)]).unwrap(),
        ParamDef::weights(
            "ThreadMix",
            [
                (Value::Int(0), 40u32),
                (Value::Int(1), 30),
                (Value::Int(2), 20),
                (Value::Int(3), 10),
            ],
        )
        .unwrap(),
        ParamDef::weights("AddrPattern", [("random", 60u32), ("stride", 40)]).unwrap(),
        ParamDef::range("StrideStep", 1, 16).unwrap(),
        ParamDef::range("SnoopPct", 0, 20).unwrap(),
        // --- plausible knobs irrelevant to the bypass family ---
        ParamDef::range("ScrubRate", 0, 10).unwrap(),
        ParamDef::weights("EccEn", [("on", 90u32), ("off", 10)]).unwrap(),
        ParamDef::weights("VictimSel", [("lru", 80u32), ("rand", 20)]).unwrap(),
        ParamDef::weights("TagEcc", [("on", 90u32), ("off", 10)]).unwrap(),
        ParamDef::range("DramPage", 1, 5).unwrap(),
        ParamDef::range("RefreshRate", 0, 8).unwrap(),
        ParamDef::range("MshrInit", 4, 17).unwrap(),
        ParamDef::range("WrBufDepth", 2, 9).unwrap(),
        ParamDef::range("LockPct", 0, 5).unwrap(),
    ];
    for d in defs {
        reg.define(d).expect("unique parameter names");
    }
    reg
}

fn stock_library() -> TemplateLibrary {
    let sub = |lo, hi| Value::SubRange { lo, hi };
    let t = TestTemplate::builder;
    [
        t("l3_smoke").build(),
        t("l3_reads")
            .weights("RwMix", [("load", 100u32)])
            .unwrap()
            .build(),
        t("l3_stores")
            .weights("RwMix", [("store", 90u32), ("load", 10)])
            .unwrap()
            .build(),
        t("l3_smt4")
            .weights(
                "ThreadMix",
                [
                    (Value::Int(0), 25u32),
                    (Value::Int(1), 25),
                    (Value::Int(2), 25),
                    (Value::Int(3), 25),
                ],
            )
            .unwrap()
            .build(),
        t("l3_stride_walk")
            .weights("AddrPattern", [("stride", 100u32)])
            .unwrap()
            .range("StrideStep", 1, 4)
            .unwrap()
            .build(),
        t("l3_small_ws")
            .weights("WorkingSet", [(sub(8, 64), 100u32)])
            .unwrap()
            .build(),
        t("l3_medium_ws")
            .weights("WorkingSet", [(sub(64, 512), 60u32), (sub(512, 4096), 40)])
            .unwrap()
            .build(),
        // The capacity/prefetch stress template: carries every parameter
        // that matters for deep bypass occupancy, with *mild* settings —
        // the verification team wrote it, AS-CDG retunes it.
        t("l3_capacity_stress")
            .weights(
                "WorkingSet",
                [
                    (sub(64, 512), 30u32),
                    (sub(512, 4096), 50),
                    (sub(4096, 32768), 20),
                ],
            )
            .unwrap()
            .range("GapL3", MIN_GAP, 36)
            .unwrap()
            .weights("RwMix", [("load", 62u32), ("store", 30), ("prefetch", 8)])
            .unwrap()
            .weights("PfDepth", [(sub(1, 3), 90u32), (sub(3, 6), 10)])
            .unwrap()
            .range("ReqCount", 100, 200)
            .unwrap()
            .build(),
        t("l3_pressure")
            .weights("WorkingSet", [(sub(512, 4096), 100u32)])
            .unwrap()
            .range("GapL3", MIN_GAP, 24)
            .unwrap()
            .build(),
        t("l3_prefetch")
            .weights("RwMix", [("prefetch", 10u32), ("load", 90)])
            .unwrap()
            .weights("PfDepth", [(sub(1, 3), 85u32), (sub(3, 6), 15)])
            .unwrap()
            .build(),
        t("l3_snoop_heavy")
            .range("SnoopPct", 10, 20)
            .unwrap()
            .build(),
        t("l3_scrub").range("ScrubRate", 5, 10).unwrap().build(),
        t("l3_victim_rand")
            .weights("VictimSel", [("rand", 100u32)])
            .unwrap()
            .build(),
        t("l3_lock").range("LockPct", 2, 5).unwrap().build(),
        t("l3_refresh").range("RefreshRate", 4, 8).unwrap().build(),
    ]
    .into_iter()
    .collect()
}

impl L3Env {
    /// Builds the environment (registry, stock library, coverage model).
    #[must_use]
    pub fn new() -> Self {
        let model =
            CoverageModel::from_names("l3cache", event_names()).expect("event names are unique");
        let bypass_ids = (1..=BYPASS_CREDITS)
            .map(|k| model.id(&format!("byp_reqs{k:02}")).expect("family event"))
            .collect();
        L3Env {
            registry: registry(),
            model,
            library: stock_library(),
            bypass_ids,
        }
    }

    /// Generates one instance's memory program into `out` (a cleared
    /// scratch buffer on the batch path, a fresh `Vec` otherwise); returns
    /// the `(base, working_set)` warm span.
    fn generate_into(
        &self,
        sampler: &mut ParamSampler<'_>,
        stride_mode: bool,
        out: &mut Vec<MemRequest>,
    ) -> Result<(u64, u64), EnvError> {
        let count = sampler.sample_int("ReqCount")? as usize;
        let working_set = sampler.sample_int("WorkingSet")? as u64;
        let stride = sampler.sample_int("StrideStep")? as u64;
        let base = sampler.uniform(0, 1 << 20) as u64;
        let mut walker = base;
        out.reserve(count);
        for _ in 0..count {
            let line_addr = if stride_mode {
                walker = base + (walker + stride - base) % working_set;
                walker
            } else {
                base + sampler.uniform(0, working_set as i64) as u64
            };
            let thread = sampler.sample_int("ThreadMix")? as u8;
            let gap = sampler.sample_int("GapL3")? as u32;
            match sampler.sample_choice("RwMix")?.as_str() {
                "load" => out.push(MemRequest {
                    line_addr,
                    op: MemOp::Load,
                    thread,
                    gap,
                }),
                "store" => out.push(MemRequest {
                    line_addr,
                    op: MemOp::Store,
                    thread,
                    gap,
                }),
                _ => {
                    // A prefetch op is a hardware burst: `depth` sequential
                    // lines, back to back (only the first carries the gap).
                    let depth = sampler.sample_int("PfDepth")? as u64;
                    for j in 0..depth {
                        out.push(MemRequest {
                            line_addr: line_addr + j,
                            op: MemOp::Prefetch,
                            thread,
                            gap: if j == 0 { gap } else { 0 },
                        });
                    }
                }
            }
        }
        Ok((base, working_set))
    }

    /// Marks the bypass-occupancy family event for the current depth.
    fn bump_bypass<S: CoverageSink>(&self, inflight: &DelayLine<u64>, cov: &mut S) {
        let depth = inflight.len().min(BYPASS_CREDITS);
        if depth >= 1 {
            cov.hit(self.bypass_ids[depth - 1]);
        }
    }

    /// Runs the cache model over a program, collecting coverage.
    ///
    /// `warm` is the `(base, lines)` span pre-filled into the cache before
    /// the coverage window opens; `snoop_rate` is the per-request
    /// probability of a background invalidation. [`VerifEnv::simulate`]
    /// derives both from the template; tests may pass explicit values.
    #[must_use]
    pub fn run_program(
        &self,
        program: &MemProgram,
        sampler: &mut ParamSampler<'_>,
        stride_mode: bool,
        warm: (u64, u64),
        snoop_rate: f64,
    ) -> CoverageVector {
        let mut cov = CoverageVector::empty(self.model.len());
        let mut sets = Vec::new();
        let mut inflight = DelayLine::new();
        self.run_program_into(
            program,
            sampler,
            stride_mode,
            warm,
            snoop_rate,
            &mut sets,
            &mut inflight,
            &mut cov,
        );
        cov
    }

    /// [`L3Env::run_program`] over caller-provided cache state and a zeroed
    /// coverage sink (a `CoverageVector` or a bit-plane lane) — the batch
    /// kernels' entry point. `sets` and `inflight` are cleared (never
    /// trusted) before use, so recycled scratch state produces the same
    /// coverage as fresh state.
    #[allow(clippy::too_many_arguments)]
    fn run_program_into<S: CoverageSink>(
        &self,
        program: &[MemRequest],
        sampler: &mut ParamSampler<'_>,
        stride_mode: bool,
        warm: (u64, u64),
        snoop_rate: f64,
        sets: &mut Vec<Vec<u64>>,
        inflight: &mut DelayLine<u64>,
        cov: &mut S,
    ) {
        let hit = |name: &str, cov: &mut S| {
            cov.hit(self.model.id(name).expect("known event"));
        };

        // Per-set LRU stacks, front = MRU. Warm-start with the test's
        // working set (bounded by capacity).
        sets.resize_with(SETS, Vec::new);
        for ways in sets.iter_mut() {
            ways.clear();
        }
        inflight.clear();
        let (warm_base, warm_lines) = warm;
        for line in warm_base..warm_base + warm_lines.min((SETS * WAYS) as u64) {
            let set = (line as usize) % SETS;
            if sets[set].len() < WAYS {
                sets[set].insert(0, line);
            }
        }

        let mut cycle: u64 = 0;
        let mut prev_line: Option<u64> = None;
        let mut threads_seen = [false; 4];
        let mut store_streak = 0u32;
        let mut last_miss_set: Option<usize> = None;

        if stride_mode {
            hit("stride_pattern_seen", cov);
        }

        let fill = |sets: &mut Vec<Vec<u64>>, line: u64, cov: &mut S| {
            let set = (line as usize) % SETS;
            let ways = &mut sets[set];
            if !ways.contains(&line) {
                if ways.len() == WAYS {
                    ways.pop();
                    hit("evict_line", cov);
                }
                ways.insert(0, line);
            }
            hit("fill_complete", cov);
        };

        for req in program {
            cycle += u64::from(req.gap) + 1;
            inflight.drain_ready_with(cycle, |line| fill(&mut *sets, line, &mut *cov));

            // Background snoop traffic invalidates a random cached line.
            if sampler.chance(snoop_rate) {
                let victim_set = sampler.uniform(0, SETS as i64) as usize;
                if !sets[victim_set].is_empty() {
                    // Coherence traffic targets hot shared lines: take the
                    // MRU way, which is the likeliest to be re-accessed.
                    sets[victim_set].remove(0);
                    hit("snoop_invalidate", cov);
                }
            }

            let th = (req.thread & 3) as usize;
            threads_seen[th] = true;
            hit(
                [
                    "thread0_active",
                    "thread1_active",
                    "thread2_active",
                    "thread3_active",
                ][th],
                cov,
            );
            if prev_line == Some(req.line_addr) {
                hit("same_line_b2b", cov);
            }
            prev_line = Some(req.line_addr);
            if req.op == MemOp::Store {
                store_streak += 1;
                if store_streak >= 4 {
                    hit("store_streak4", cov);
                }
            } else {
                store_streak = 0;
            }

            let set = (req.line_addr as usize) % SETS;
            let way = sets[set].iter().position(|&l| l == req.line_addr);
            // A miss on a line whose fill is already in flight merges into
            // the pending entry (MSHR behaviour) instead of taking a new
            // bypass slot.
            let merged = way.is_none() && inflight.iter().any(|&l| l == req.line_addr);

            match (way, req.op) {
                (Some(w), op) => {
                    let line = sets[set].remove(w);
                    sets[set].insert(0, line);
                    match op {
                        MemOp::Load => hit("ld_hit", cov),
                        MemOp::Store => hit("st_hit", cov),
                        MemOp::Prefetch => hit("prefetch_issued", cov),
                    }
                }
                (None, op) if merged => match op {
                    MemOp::Load => hit("ld_miss", cov),
                    MemOp::Store => hit("st_miss", cov),
                    MemOp::Prefetch => hit("prefetch_issued", cov),
                },
                (None, MemOp::Prefetch) => {
                    // Prefetch misses are dropped when no credit is free.
                    if inflight.len() < BYPASS_CREDITS {
                        hit("prefetch_issued", cov);
                        let (latency, spiked) = mem_latency(sampler);
                        if spiked {
                            hit("mem_latency_spike", cov);
                        }
                        inflight.insert(req.line_addr, cycle + latency);
                        self.bump_bypass(inflight, cov);
                    } else {
                        hit("prefetch_dropped", cov);
                    }
                }
                (None, op) => {
                    match op {
                        MemOp::Load => hit("ld_miss", cov),
                        MemOp::Store => hit("st_miss", cov),
                        MemOp::Prefetch => unreachable!("handled above"),
                    }
                    if last_miss_set == Some(set) {
                        hit("set_conflict", cov);
                    }
                    last_miss_set = Some(set);
                    if inflight.len() == BYPASS_CREDITS {
                        // All bypass slots held: the front end stalls until
                        // the earliest response returns.
                        hit("front_end_stall", cov);
                        let next = inflight.next_ready().expect("slots are held");
                        cycle = cycle.max(next);
                        inflight.drain_ready_with(cycle, |line| fill(&mut *sets, line, &mut *cov));
                    }
                    let (latency, spiked) = mem_latency(sampler);
                    if spiked {
                        hit("mem_latency_spike", cov);
                    }
                    inflight.insert(req.line_addr, cycle + latency);
                    self.bump_bypass(inflight, cov);
                }
            }
        }
        if threads_seen.iter().all(|&t| t) {
            hit("all_threads_seen", cov);
        }
    }
}

/// Draws a memory latency; returns `(latency, spiked)` where `spiked`
/// flags jitter in the top quarter of the jitter window.
fn mem_latency(sampler: &mut ParamSampler<'_>) -> (u64, bool) {
    let jitter = sampler.uniform(0, MEM_JITTER as i64) as u64;
    (MEM_LATENCY + jitter, jitter >= MEM_JITTER - 2)
}

impl VerifEnv for L3Env {
    fn unit_name(&self) -> &str {
        "l3cache"
    }

    fn registry(&self) -> &ParamRegistry {
        &self.registry
    }

    fn coverage_model(&self) -> &CoverageModel {
        &self.model
    }

    fn stock_library(&self) -> &TemplateLibrary {
        &self.library
    }

    fn simulate_seeded(
        &self,
        resolved: &ResolvedParams,
        sampler_seed: u64,
    ) -> Result<CoverageVector, EnvError> {
        let mut sampler = ParamSampler::new(resolved, sampler_seed);
        let stride_mode = sampler.sample_choice("AddrPattern")? == "stride";
        let snoop_rate = BASE_SNOOP_RATE + sampler.rate("SnoopPct")? * 0.15;
        let mut program = Vec::new();
        let (base, working_set) = self.generate_into(&mut sampler, stride_mode, &mut program)?;
        Ok(self.run_program(
            &program,
            &mut sampler,
            stride_mode,
            (base, working_set),
            snoop_rate,
        ))
    }

    fn simulate_batch(
        &self,
        resolved: &ResolvedParams,
        seeds: &[u64],
        scratch: &mut SimScratch,
    ) -> Result<Vec<CoverageVector>, EnvError> {
        // The sampler is consumed *during* the run phase (snoops, memory
        // jitter), so sims interleave generate/run per seed — the win is
        // reusing the program buffer, the per-set LRU stacks and the
        // in-flight delay line across the whole chunk.
        let mut out = Vec::with_capacity(seeds.len());
        for &seed in seeds {
            let mut sampler = ParamSampler::new(resolved, seed);
            let stride_mode = sampler.sample_choice("AddrPattern")? == "stride";
            let snoop_rate = BASE_SNOOP_RATE + sampler.rate("SnoopPct")? * 0.15;
            scratch.mem_ops.clear();
            let (base, working_set) =
                self.generate_into(&mut sampler, stride_mode, &mut scratch.mem_ops)?;
            let mut cov = scratch.take_cov(self.model.len());
            self.run_program_into(
                &scratch.mem_ops,
                &mut sampler,
                stride_mode,
                (base, working_set),
                snoop_rate,
                &mut scratch.l3_sets,
                &mut scratch.l3_inflight,
                &mut cov,
            );
            out.push(cov);
        }
        Ok(out)
    }

    fn simulate_batch_plane(
        &self,
        resolved: &ResolvedParams,
        seeds: &[u64],
        scratch: &mut SimScratch,
    ) -> Result<(), EnvError> {
        // Same interleaved kernel as `simulate_batch`, but each sim's
        // cycle model records straight into its plane lane.
        let SimScratch {
            mem_ops,
            l3_sets,
            l3_inflight,
            plane,
            ..
        } = scratch;
        plane.begin(self.model.len(), seeds.len());
        for (lane, &seed) in seeds.iter().enumerate() {
            let mut sampler = ParamSampler::new(resolved, seed);
            let stride_mode = sampler.sample_choice("AddrPattern")? == "stride";
            let snoop_rate = BASE_SNOOP_RATE + sampler.rate("SnoopPct")? * 0.15;
            mem_ops.clear();
            let (base, working_set) = self.generate_into(&mut sampler, stride_mode, mem_ops)?;
            self.run_program_into(
                mem_ops,
                &mut sampler,
                stride_mode,
                (base, working_set),
                snoop_rate,
                l3_sets,
                l3_inflight,
                &mut plane.lane(lane),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascdg_coverage::{CoverageRepository, TemplateId};

    fn env() -> L3Env {
        L3Env::new()
    }

    fn family_rates(env: &L3Env, template: &TestTemplate, sims: u64) -> Vec<f64> {
        let resolved = env.registry().resolve(template).unwrap();
        let ids: Vec<_> = (1..=BYPASS_CREDITS)
            .map(|k| env.coverage_model().id(&format!("byp_reqs{k:02}")).unwrap())
            .collect();
        let mut hits = vec![0u64; ids.len()];
        for s in 0..sims {
            let cov = env
                .simulate_resolved(&resolved, template.name(), s)
                .unwrap();
            for (h, &id) in hits.iter_mut().zip(&ids) {
                if cov.get(id) {
                    *h += 1;
                }
            }
        }
        hits.into_iter().map(|h| h as f64 / sims as f64).collect()
    }

    #[test]
    fn stock_templates_validate() {
        let env = env();
        for (_, t) in env.stock_library().iter() {
            env.registry().validate(t).unwrap();
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let env = env();
        let t = env.stock_library().get(0).unwrap().clone();
        assert_eq!(env.simulate(&t, 3).unwrap(), env.simulate(&t, 3).unwrap());
    }

    #[test]
    fn default_traffic_stays_shallow() {
        let env = env();
        let smoke = env.stock_library().by_name("l3_smoke").unwrap().1.clone();
        let rates = family_rates(&env, &smoke, 400);
        assert!(rates[0] > 0.3, "byp_reqs01 should be common: {}", rates[0]);
        assert!(rates[1] < rates[0], "family should decay: {rates:?}");
        for k in 5..16 {
            assert_eq!(
                rates[k],
                0.0,
                "byp_reqs{:02} hit by smoke: {rates:?}",
                k + 1
            );
        }
    }

    #[test]
    fn capacity_stress_goes_deeper_but_not_deep() {
        let env = env();
        let stress = env
            .stock_library()
            .by_name("l3_capacity_stress")
            .unwrap()
            .1
            .clone();
        let rates = family_rates(&env, &stress, 300);
        assert!(
            rates[2] > 0.05,
            "byp_reqs03 should be reachable under capacity stress: {rates:?}"
        );
        for k in 11..16 {
            assert_eq!(
                rates[k],
                0.0,
                "byp_reqs{:02} must stay out of stock reach: {rates:?}",
                k + 1
            );
        }
    }

    #[test]
    fn family_is_monotone_within_sim() {
        let env = env();
        let stress = env
            .stock_library()
            .by_name("l3_capacity_stress")
            .unwrap()
            .1
            .clone();
        let resolved = env.registry().resolve(&stress).unwrap();
        let ids: Vec<_> = (1..=BYPASS_CREDITS)
            .map(|k| env.coverage_model().id(&format!("byp_reqs{k:02}")).unwrap())
            .collect();
        for s in 0..100 {
            let cov = env.simulate_resolved(&resolved, "x", s).unwrap();
            for w in ids.windows(2) {
                assert!(cov.get(w[1]) <= cov.get(w[0]), "not monotone at seed {s}");
            }
        }
    }

    #[test]
    fn aggressive_settings_reach_deep_bypass() {
        // A hand-tuned template in the spirit of what the optimizer should
        // find: huge working set, all-prefetch traffic, deep bursts, tight
        // gaps. Deep family members must be reachable this way.
        let env = env();
        let sub = |lo, hi| Value::SubRange { lo, hi };
        let t = TestTemplate::builder("deep")
            .weights("WorkingSet", [(sub(4096, 32768), 100u32)])
            .unwrap()
            .range("GapL3", MIN_GAP, MIN_GAP + 4)
            .unwrap()
            .weights("RwMix", [("prefetch", 100u32)])
            .unwrap()
            .weights("PfDepth", [(sub(3, 6), 100u32)])
            .unwrap()
            .range("ReqCount", 150, 200)
            .unwrap()
            .build();
        let rates = family_rates(&env, &t, 300);
        assert!(rates[9] > 0.05, "byp_reqs10 should be common: {rates:?}");
        assert!(
            rates[13] > 0.0,
            "byp_reqs14 should be reachable at the optimum: {rates:?}"
        );
        // ...while still decaying toward 16.
        assert!(rates[15] <= rates[11], "no decay toward 16: {rates:?}");
    }

    #[test]
    fn warm_start_means_hits_dominate_small_ws() {
        let env = env();
        let t = env
            .stock_library()
            .by_name("l3_small_ws")
            .unwrap()
            .1
            .clone();
        let resolved = env.registry().resolve(&t).unwrap();
        let mut hits = 0u64;
        let mut misses = 0u64;
        let m = env.coverage_model();
        for s in 0..100 {
            let cov = env.simulate_resolved(&resolved, "t", s).unwrap();
            hits += u64::from(cov.get(m.id("ld_hit").unwrap()));
            misses += u64::from(cov.get(m.id("ld_miss").unwrap()));
        }
        assert!(hits == 100, "warm small working sets should always hit");
        assert!(misses < 100, "only snoop re-misses should miss");
    }

    #[test]
    fn handcrafted_program_counts_outstanding() {
        let env = env();
        let resolved = env
            .registry()
            .resolve(&TestTemplate::builder("manual").build())
            .unwrap();
        let mut sampler = ParamSampler::new(&resolved, 5);
        // Five distinct lines, no gaps: five misses land in flight together
        // (memory latency >> issue spacing). No warm lines, no snoops.
        let program: MemProgram = (0..5)
            .map(|i| MemRequest {
                line_addr: 1000 + i * 7,
                op: MemOp::Load,
                thread: 0,
                gap: 0,
            })
            .collect();
        let cov = env.run_program(&program, &mut sampler, false, (0, 0), 0.0);
        let m = env.coverage_model();
        assert!(cov.get(m.id("byp_reqs05").unwrap()));
        assert!(!cov.get(m.id("byp_reqs06").unwrap()));
        assert!(cov.get(m.id("ld_miss").unwrap()));
        assert!(!cov.get(m.id("ld_hit").unwrap()));
    }

    #[test]
    fn repeated_line_hits_after_fill() {
        let env = env();
        let resolved = env
            .registry()
            .resolve(&TestTemplate::builder("manual").build())
            .unwrap();
        let mut sampler = ParamSampler::new(&resolved, 6);
        let program: MemProgram = vec![
            MemRequest {
                line_addr: 42,
                op: MemOp::Load,
                thread: 0,
                gap: 0,
            },
            MemRequest {
                line_addr: 42,
                op: MemOp::Load,
                thread: 0,
                gap: 100,
            },
        ];
        let cov = env.run_program(&program, &mut sampler, false, (0, 0), 0.0);
        let m = env.coverage_model();
        assert!(cov.get(m.id("ld_miss").unwrap()));
        assert!(cov.get(m.id("ld_hit").unwrap()));
        assert!(cov.get(m.id("same_line_b2b").unwrap()));
        assert!(cov.get(m.id("fill_complete").unwrap()));
    }

    #[test]
    fn warm_lines_hit_immediately() {
        let env = env();
        let resolved = env
            .registry()
            .resolve(&TestTemplate::builder("manual").build())
            .unwrap();
        let mut sampler = ParamSampler::new(&resolved, 7);
        let program: MemProgram = vec![MemRequest {
            line_addr: 500,
            op: MemOp::Load,
            thread: 1,
            gap: 0,
        }];
        let cov = env.run_program(&program, &mut sampler, false, (400, 200), 0.0);
        let m = env.coverage_model();
        assert!(cov.get(m.id("ld_hit").unwrap()));
        assert!(!cov.get(m.id("ld_miss").unwrap()));
        assert!(cov.get(m.id("thread1_active").unwrap()));
    }

    #[test]
    fn prefetch_burst_occupies_multiple_slots() {
        let env = env();
        let resolved = env
            .registry()
            .resolve(&TestTemplate::builder("manual").build())
            .unwrap();
        let mut sampler = ParamSampler::new(&resolved, 8);
        let program: MemProgram = (0..4)
            .map(|j| MemRequest {
                line_addr: 9000 + j,
                op: MemOp::Prefetch,
                thread: 0,
                gap: 0,
            })
            .collect();
        let cov = env.run_program(&program, &mut sampler, false, (0, 0), 0.0);
        let m = env.coverage_model();
        assert!(cov.get(m.id("byp_reqs04").unwrap()));
        assert!(cov.get(m.id("prefetch_issued").unwrap()));
    }

    #[test]
    fn hits_and_misses_both_occur() {
        let env = env();
        let repo = CoverageRepository::new(env.coverage_model().clone());
        let t = env
            .stock_library()
            .by_name("l3_medium_ws")
            .unwrap()
            .1
            .clone();
        let resolved = env.registry().resolve(&t).unwrap();
        for s in 0..100 {
            repo.record(
                TemplateId(0),
                &env.simulate_resolved(&resolved, "t", s).unwrap(),
            );
        }
        let m = env.coverage_model();
        assert!(repo.global_stats(m.id("ld_hit").unwrap()).hits > 0);
        assert!(repo.global_stats(m.id("ld_miss").unwrap()).hits > 0);
    }

    #[test]
    fn prefetch_drops_when_credits_exhausted() {
        let env = env();
        let resolved = env
            .registry()
            .resolve(&TestTemplate::builder("manual").build())
            .unwrap();
        let mut sampler = ParamSampler::new(&resolved, 11);
        // 16 demand misses fill every credit; a 17th prefetch miss must be
        // dropped, and a 17th demand miss must stall the front end.
        let mut program: MemProgram = (0..BYPASS_CREDITS as u64)
            .map(|i| MemRequest {
                line_addr: 5000 + i * 3,
                op: MemOp::Load,
                thread: 0,
                gap: 0,
            })
            .collect();
        program.push(MemRequest {
            line_addr: 9000,
            op: MemOp::Prefetch,
            thread: 0,
            gap: 0,
        });
        let cov = env.run_program(&program, &mut sampler, false, (0, 0), 0.0);
        let m = env.coverage_model();
        assert!(cov.get(m.id("byp_reqs16").unwrap()));
        assert!(cov.get(m.id("prefetch_dropped").unwrap()));
        assert!(!cov.get(m.id("front_end_stall").unwrap()));

        let mut sampler = ParamSampler::new(&resolved, 12);
        let mut program2 = program.clone();
        program2.pop();
        program2.push(MemRequest {
            line_addr: 9000,
            op: MemOp::Store,
            thread: 0,
            gap: 0,
        });
        let cov = env.run_program(&program2, &mut sampler, false, (0, 0), 0.0);
        assert!(cov.get(m.id("front_end_stall").unwrap()));
        assert!(cov.get(m.id("st_miss").unwrap()));
    }

    #[test]
    fn mshr_merge_takes_no_extra_slot() {
        let env = env();
        let resolved = env
            .registry()
            .resolve(&TestTemplate::builder("manual").build())
            .unwrap();
        let mut sampler = ParamSampler::new(&resolved, 13);
        // Two back-to-back misses on the SAME line: the second merges into
        // the in-flight fill, so occupancy never reaches 2.
        let program: MemProgram = vec![
            MemRequest {
                line_addr: 777,
                op: MemOp::Load,
                thread: 0,
                gap: 0,
            },
            MemRequest {
                line_addr: 777,
                op: MemOp::Load,
                thread: 1,
                gap: 0,
            },
        ];
        let cov = env.run_program(&program, &mut sampler, false, (0, 0), 0.0);
        let m = env.coverage_model();
        assert!(cov.get(m.id("byp_reqs01").unwrap()));
        assert!(!cov.get(m.id("byp_reqs02").unwrap()));
    }

    #[test]
    fn snoop_invalidation_causes_remiss() {
        let env = env();
        let resolved = env
            .registry()
            .resolve(&TestTemplate::builder("manual").build())
            .unwrap();
        let mut sampler = ParamSampler::new(&resolved, 15);
        // Warm line, snoop rate 1.0: every request invalidates a random
        // set's MRU way, so repeated hits to one warm line eventually
        // re-miss once its set (1 of 256) is the victim. The program is
        // long enough that missing the set every time is astronomically
        // unlikely (p < 1e-5).
        let program: MemProgram = (0..3000)
            .map(|i| MemRequest {
                line_addr: 300,
                op: MemOp::Load,
                thread: 0,
                gap: (i % 4) as u32,
            })
            .collect();
        let cov = env.run_program(&program, &mut sampler, false, (300, 1), 1.0);
        let m = env.coverage_model();
        assert!(cov.get(m.id("snoop_invalidate").unwrap()));
        assert!(
            cov.get(m.id("ld_miss").unwrap()),
            "victimized line never re-missed"
        );
        assert!(cov.get(m.id("ld_hit").unwrap()));
    }
}
